"""Ablation — early stopping (Sec 3.8).

'One way of reducing energy consumption is to stop the AutoML system
execution once it reaches the optimal performance ... especially for smaller
datasets, early stopping should be enforced to save energy.'  We run CAML
with and without a stale-incumbent stop on a small overfit-prone dataset
(kc1, one of the three the paper names in Table 6).
"""

import numpy as np
from conftest import emit

from repro.analysis.reporting import format_table
from repro.datasets import load_dataset
from repro.metrics import balanced_accuracy_score
from repro.systems import CamlSystem

SCALE = 0.004


def _run_ablation():
    ds = load_dataset("kc1")
    rows = []
    out = {}
    for label, rounds in (("no early stop", None), ("early stop (3)", 3)):
        kwhs, accs, times = [], [], []
        for seed in (0, 1):
            system = CamlSystem(early_stop_rounds=rounds, random_state=seed,
                                time_scale=SCALE)
            system.fit(ds.X_train, ds.y_train, budget_s=300,
                       categorical_mask=ds.categorical_mask)
            kwhs.append(system.fit_result_.execution_kwh)
            times.append(system.fit_result_.actual_seconds)
            accs.append(balanced_accuracy_score(
                ds.y_test, system.predict(ds.X_test)))
        rows.append([label, np.mean(accs), np.mean(kwhs), np.mean(times)])
        out[label] = (np.mean(accs), np.mean(kwhs))
    return rows, out


def test_ablation_early_stopping(benchmark):
    rows, out = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    saving = 1.0 - out["early stop (3)"][1] / out["no early stop"][1]
    emit("Ablation — early stopping on kc1 at a 5min budget\n\n"
         + format_table(
             ["configuration", "bal.acc", "exec kWh", "actual s"], rows)
         + f"\n\nenergy saved by early stopping: {100 * saving:.0f}%")

    assert saving > 0.1
    # accuracy stays within noise of the full run (overfitting regime)
    assert out["early stop (3)"][0] >= out["no early stop"][0] - 0.1

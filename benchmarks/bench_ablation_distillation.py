"""Ablation — distilling the stacked ensemble (Sec 5 / ref [17]).

The paper's Limitations section: model distillation is the orthogonal lever
for inference energy — 'distilling the large stacking models of AutoGluon
with a DNN'.  This bench trains AutoGluon, distills the deployed stack into
a single soft-label student, and compares the three deployment options
(full stack / refit preset / distilled student) on the accuracy-vs-
inference-energy plane.
"""

from conftest import emit

from repro.analysis.reporting import format_table
from repro.datasets import load_dataset
from repro.ensemble import distill, distillation_report
from repro.energy import kwh_per_prediction
from repro.metrics import balanced_accuracy_score
from repro.systems import AutoGluonSystem

SCALE = 0.004


def _run_ablation():
    ds = load_dataset("phoneme")
    system = AutoGluonSystem(random_state=0, time_scale=SCALE)
    system.fit(ds.X_train, ds.y_train, budget_s=60,
               categorical_mask=ds.categorical_mask)
    teacher = system.model_

    student = distill(teacher, ds.X_train, random_state=0)
    report = distillation_report(teacher, student, ds.X_test, ds.y_test)

    refit_system = AutoGluonSystem(
        random_state=0, time_scale=SCALE, optimize_for_inference=True,
    )
    refit_system.fit(ds.X_train, ds.y_train, budget_s=60,
                     categorical_mask=ds.categorical_mask)

    rows = [
        ["full stack", report["teacher_accuracy"],
         report["teacher_kwh_per_instance"]],
        ["refit preset",
         balanced_accuracy_score(
             ds.y_test, refit_system.predict(ds.X_test)),
         refit_system.inference_kwh_per_instance()],
        ["distilled student", report["student_accuracy"],
         report["student_kwh_per_instance"]],
    ]
    return rows, report


def test_ablation_distillation(benchmark):
    rows, report = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    emit("Ablation — deployment options for the AutoGluon stack\n\n"
         + format_table(
             ["deployment", "bal.acc", "inference kWh/inst"], rows)
         + f"\n\nstudent/teacher agreement: {report['agreement']:.2f}; "
           f"inference-energy reduction: "
           f"{100 * report['energy_reduction']:.0f}%")

    # distillation removes most of the ensembling energy (the paper's
    # suggested remedy for O1)...
    assert report["energy_reduction"] > 0.5
    # ...while keeping accuracy in the teacher's neighbourhood
    assert report["student_accuracy"] >= report["teacher_accuracy"] - 0.1

"""Figure 7 — investing energy in the *development* stage: tune CAML's
AutoML parameters on representative datasets (Sec 2.5), then compare
CAML(tuned) against default CAML.

Reproduction targets: the tuner's energy is measured and reported as the
development-stage bubble; CAML(tuned) matches or beats default CAML on
held-out datasets; the amortisation run count (paper: 885) is finite when
the tuned system is cheaper to execute."""

from conftest import emit

from repro.experiments import run_development_experiment


def test_figure7_development_stage(benchmark):
    fig = benchmark.pedantic(
        run_development_experiment,
        kwargs=dict(
            budgets=(10.0,),
            eval_datasets=("credit-g", "phoneme"),
            top_k=5,
            n_bo_iterations=6,
            n_runs=2,
            time_scale=0.004,
        ),
        rounds=1, iterations=1,
    )
    emit(fig.render())

    result = fig.tuning_results[10.0]
    assert result.development_energy.kwh > 0
    assert result.n_trials == 6

    tuned_acc = fig.tuned_store.mean_over_runs(
        "balanced_accuracy", system="CAML", budget=10.0)
    default_acc = fig.baseline_store.mean_over_runs(
        "balanced_accuracy", system="CAML", budget=10.0)
    emit(
        f"CAML(tuned) bal.acc = {tuned_acc:.3f} vs default "
        f"{default_acc:.3f}; development energy = "
        f"{result.development_energy.kwh:.4f} kWh; amortises after "
        f"~{fig.amortization_runs(10.0):,.0f} executions "
        f"(paper: 885 for the 5min tuning at 21 kWh)"
    )
    # the tuned configuration must not be worse than the default beyond noise
    assert tuned_acc >= default_acc - 0.05

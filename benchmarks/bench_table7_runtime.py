"""Table 7 — actual execution time per configured search time.

Reproduction targets: TabPFN's constant ~0.29s load; CAML's strict
adherence; FLAML's small soft overrun; AutoGluon overrunning hardest at
small budgets; ASKL overrunning because ensembling is not budgeted."""

import numpy as np
from conftest import emit

from repro.analysis import adherence_ranking
from repro.experiments import table7


def test_table7_budget_adherence(benchmark, grid_store):
    rows, text = benchmark.pedantic(
        table7, args=(grid_store,), rounds=1, iterations=1,
    )
    emit(text)

    ranked = dict(adherence_ranking(rows))
    emit("mean overrun ratios: "
         + ", ".join(f"{s}={r:.2f}" for s, r in sorted(
             ranked.items(), key=lambda kv: kv[1])))

    # TabPFN: constant tiny execution, ratio ~0
    assert ranked["TabPFN"] < 0.1
    # CAML adheres most strictly among the searchers (paper: 10.47s/10s;
    # on the scaled substrate the fixed per-evaluation cost sets a floor,
    # so the tolerance is wider than the paper's ±0.5%)
    assert ranked["CAML"] < 2.5
    searchers = [s for s in ranked if s != "TabPFN"]
    assert min(searchers, key=lambda s: ranked[s]) in ("CAML", "FLAML")
    # AutoGluon overruns hardest at the smallest budget (paper: 22.3s/10s)
    ag10 = next(r for r in rows
                if r.system == "AutoGluon" and r.configured_s == 10.0)
    ag300 = next(r for r in rows
                 if r.system == "AutoGluon" and r.configured_s == 300.0)
    assert ag10.overrun_ratio > ag300.overrun_ratio
    assert ag10.overrun_ratio > 1.2

    # budget-respecting systems overrun less than AutoGluon at 10s
    caml10 = next(r for r in rows
                  if r.system == "CAML" and r.configured_s == 10.0)
    assert caml10.overrun_ratio < ag10.overrun_ratio
    # the un-budgeted post-search ensembling keeps ASKL above CAML (Sec 3.10)
    if "AutoSklearn1" in ranked:
        assert ranked["AutoSklearn1"] > ranked["CAML"]

"""Table 6 — overfitting & early stopping: per system, how many datasets
score *worse* at 5min than at 1min.

Reproduction target: overfitting happens (non-zero counts for at least some
systems), concentrated on the small datasets the paper names (kc1,
blood-transfusion-service-center — all < 3k rows)."""

from conftest import emit

from repro.analysis import most_overfit_datasets
from repro.experiments import table6


def test_table6_overfitting(benchmark, grid_store):
    reports, text = benchmark.pedantic(
        table6, args=(grid_store,),
        kwargs={"short_budget": 60.0, "long_budget": 300.0},
        rounds=1, iterations=1,
    )
    emit(text)

    assert reports
    # overfitting exists somewhere across systems (paper: up to 11/39)
    total_overfit = sum(r.n_overfit for r in reports)
    assert total_overfit >= 1
    # every count is within range
    for rep in reports:
        assert 0 <= rep.n_overfit <= rep.n_datasets

    top = most_overfit_datasets(reports, top=3)
    emit(f"most frequently overfit datasets: {top} "
         f"(paper: kc1, cnae-9, blood-transfusion-service-center)")

"""Table 9 — development-stage tuning with different BO iteration counts
(paper: 75/150/300/600 for a 10s budget; 600 *overfits* the representative
datasets and scores below 300).

Reproduction targets: energy/time grow with the iteration count; the best
objective is non-decreasing in iterations on the *tuning* datasets (the
overfitting the paper reports shows up on held-out data, not here)."""

import numpy as np
from conftest import emit

from repro.devtuning import DevelopmentTuner
from repro.experiments.tables import DevSweepRow, render_dev_sweep


def _sweep_iterations():
    rows = []
    results = []
    for n_iter in (2, 4, 8):
        tuner = DevelopmentTuner(
            search_budget_s=10.0, top_k=3, n_bo_iterations=n_iter,
            runs_per_dataset=1, time_scale=0.004, random_state=7,
        )
        result = tuner.tune()
        results.append(result)
        import numpy as np

        complete = [t for t in result.trials if not t.pruned and t.per_dataset]
        accs = [a for t in complete for a in t.per_dataset] or [float("nan")]
        rows.append(DevSweepRow(
            setting=n_iter,
            balanced_accuracy_mean=result.mean_balanced_accuracy,
            balanced_accuracy_std=float(np.std(accs)),
            energy_kwh=result.development_energy.kwh,
            hours=result.development_energy.duration_s / 3600.0,
        ))
    return rows, results


def test_table9_bo_iterations(benchmark):
    rows, results = benchmark.pedantic(
        _sweep_iterations, rounds=1, iterations=1,
    )
    emit(render_dev_sweep(
        rows, label="BO iterations",
        title="Table 9 — tuning cost/quality vs BO iterations (10s budget)",
    ))

    energies = [r.energy_kwh for r in rows]
    assert energies == sorted(energies)

    # the paper's own Table 9 is *non-monotonic* in iterations (600 scores
    # below 300: the tuner overfits the representative datasets), so the
    # assertion is on validity, not monotonicity
    objectives = [r.best_objective for r in results]
    assert all(np.isfinite(o) for o in objectives)

    assert all(r.n_trials == n for r, n in zip(results, (2, 4, 8)))

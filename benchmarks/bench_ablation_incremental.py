"""Ablation — CAML's incremental training / successive halving (Sec 2.2,
Table 5 discussion).

'CAML's execution shows higher energy efficiency for small search times ...
because it leverages successive halving to quickly achieve high predictive
performance especially for large datasets.'  We compare CAML with and
without incremental training at a short budget on the suite's largest
dataset.
"""

import numpy as np
from conftest import emit

from repro.analysis.reporting import format_table
from repro.datasets import load_dataset
from repro.metrics import balanced_accuracy_score
from repro.systems import CamlParameters, CamlSystem

SCALE = 0.004


def _run_ablation():
    ds = load_dataset("covertype")   # largest AMLB task
    rows = []
    accs = {True: [], False: []}
    evals = {True: [], False: []}
    for incremental in (True, False):
        for seed in (0, 1, 2):
            params = CamlParameters(incremental_training=incremental)
            system = CamlSystem(params=params, random_state=seed,
                                time_scale=SCALE)
            system.fit(ds.X_train, ds.y_train, budget_s=10,
                       categorical_mask=ds.categorical_mask)
            acc = balanced_accuracy_score(
                ds.y_test, system.predict(ds.X_test))
            accs[incremental].append(acc)
            evals[incremental].append(system.fit_result_.n_evaluations)
            rows.append([
                "incremental" if incremental else "full-data",
                seed, acc, system.fit_result_.n_evaluations,
            ])
    return rows, accs, evals


def test_ablation_incremental_training(benchmark):
    rows, accs, evals = benchmark.pedantic(_run_ablation, rounds=1,
                                           iterations=1)
    emit("Ablation — CAML incremental training at a 10s budget "
         "(largest dataset)\n\n"
         + format_table(["mode", "seed", "bal.acc", "evaluations"], rows))

    # incremental training gets through more candidate evaluations...
    assert np.mean(evals[True]) >= np.mean(evals[False])
    # ...without losing accuracy at the short budget
    assert np.mean(accs[True]) >= np.mean(accs[False]) - 0.05

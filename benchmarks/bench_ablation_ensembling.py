"""Ablation — the ensembling ladder (Sec 2.3, 'Ensembling' + O1).

AutoGluon in three configurations: full stacking, bagging only (no second
layer), and the refit preset.  The ladder shows where the inference-energy
order of magnitude comes from: every rung removed cuts the deployed model
count and the kWh/prediction.
"""

import numpy as np
from conftest import emit

from repro.analysis.reporting import format_table
from repro.datasets import load_dataset
from repro.ensemble import StackingEnsemble
from repro.metrics import balanced_accuracy_score
from repro.systems import AutoGluonSystem
from repro.systems.autogluon import default_portfolio

BUDGET_S = 60.0
SCALE = 0.004


def _run_ladder():
    ds = load_dataset("phoneme")
    rows = []
    results = {}
    for label, kwargs in (
        ("stacking (default)", {}),
        ("refit preset", {"optimize_for_inference": True}),
    ):
        system = AutoGluonSystem(random_state=0, time_scale=SCALE, **kwargs)
        system.fit(ds.X_train, ds.y_train, budget_s=BUDGET_S,
                   categorical_mask=ds.categorical_mask)
        acc = balanced_accuracy_score(ds.y_test, system.predict(ds.X_test))
        inf = system.inference_kwh_per_instance()
        rows.append([label, acc, system.n_ensemble_members, inf])
        results[label] = (acc, system.n_ensemble_members, inf)

    # bagging-only rung, built directly on the ensemble substrate
    stack = StackingEnsemble(
        default_portfolio(random_state=0)[:3], n_folds=3,
        use_stacking=False, random_state=0,
    ).fit(ds.X_train, ds.y_train)
    from repro.energy import kwh_per_prediction

    acc = balanced_accuracy_score(ds.y_test, stack.predict(ds.X_test))
    inf = kwh_per_prediction(stack)
    rows.append(["bagging only (no stack)", acc,
                 len(stack.ensemble_members), inf])
    results["bagging only"] = (acc, len(stack.ensemble_members), inf)

    # single best member as the floor
    single = stack.layer1_[0].ensemble_members[0]
    acc = balanced_accuracy_score(ds.y_test, single.predict(ds.X_test))
    inf = kwh_per_prediction(single)
    rows.append(["single model", acc, 1, inf])
    results["single model"] = (acc, 1, inf)
    return rows, results


def test_ablation_ensembling_ladder(benchmark):
    rows, results = benchmark.pedantic(_run_ladder, rounds=1, iterations=1)
    emit("Ablation — the ensembling ladder (AutoGluon)\n\n"
         + format_table(
             ["configuration", "bal.acc", "#deployed models",
              "inference kWh/inst"], rows))

    stack_inf = results["stacking (default)"][2]
    single_inf = results["single model"][2]
    # O1: the full stack costs >= an order of magnitude more than one model
    assert stack_inf > 8 * single_inf
    # each rung removed reduces inference energy
    assert results["refit preset"][2] < stack_inf
    assert results["bagging only"][2] < stack_inf
    # and the model counts shrink along the ladder
    assert (results["stacking (default)"][1]
            > results["bagging only"][1]
            > results["single model"][1])

"""Figure 4 — joint execution+inference energy against the number of served
predictions.  The paper's O2: TabPFN is the most energy-efficient below a
crossover (26k predictions on their testbed); past it, the cheap-model
searchers (FLAML/CAML) win because their per-prediction energy is tiny."""

import numpy as np
from conftest import emit

from repro.experiments import figure4


def test_figure4_energy_vs_prediction_count(benchmark, grid_store):
    fig = benchmark.pedantic(
        figure4, args=(grid_store,),
        kwargs={"n_predictions": np.logspace(1, 7, 13)},
        rounds=1, iterations=1,
    )
    emit(fig.render())

    # TabPFN wins at tiny scales (it spends almost nothing on execution)
    assert fig.winner_at(10) == "TabPFN"
    # a TabPFN -> cheap-searcher crossover exists at a finite scale; its
    # absolute position depends on the exec/inference scale ratio of the
    # substrate (paper: ~26k on their testbed), so assert *around* it
    crossings = {
        pair: n for pair, n in fig.crossovers.items()
        if pair[1] in ("FLAML", "CAML")
    }
    assert crossings
    n_cross = min(crossings.values())
    assert np.isfinite(n_cross) and n_cross > 10
    # below the crossover TabPFN is optimal; above it a searcher wins (O2)
    assert fig.winner_at(n_cross / 10) == "TabPFN"
    assert fig.winner_at(n_cross * 100) != "TabPFN"
    emit(f"TabPFN stops being optimal after ~{n_cross:,.0f} predictions "
         f"(paper: ~26k on their testbed)")

"""Speed bench — histogram-binned tree kernels vs the exact builders.

Fits the tree family (DT, RF, ET, GBM) twice on the same synthetic
table — once with the exact sort-based split search, once with the
histogram-binned builder — and records fits/s, rows/s and cells/s plus
the binned-vs-exact prediction agreement into ``BENCH_models.json``.
kNN rides along as the inference-bound member of the zoo: its number is
prediction throughput through the blocked pairwise kernel.

``REPRO_BENCH_SMOKE=1`` shrinks the grid for CI; the committed artefact
comes from a full local run, where the binned RF/GBM fits clear 5x.
The CI gate only asserts the conservative 2x floor.
"""

import os

import numpy as np
from conftest import emit, write_bench_json

from repro.analysis.reporting import format_table
from repro.datasets import make_classification
from repro.models import (
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    RandomForestClassifier,
)
from repro.utils.timer import Stopwatch, WallClock

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_ROWS = 3_000 if SMOKE else 20_000
N_TEST = 1_000 if SMOKE else 4_000
N_FEATURES = 20 if SMOKE else 40
N_CLASSES = 3
N_TREES = 10 if SMOKE else 30
MAX_BINS = 255
SEED = 0
#: binned split search may tie-break differently than the exact scan, so
#: "equal predictions" is agreement on held-out rows, not bit identity
MIN_AGREEMENT = 0.9
#: conservative CI floor; local full runs show >=5x for RF/GBM
MIN_SPEEDUP = 2.0


def _models():
    return [
        ("DT", lambda b: DecisionTreeClassifier(
            max_depth=12, random_state=SEED, binning=b)),
        ("RF", lambda b: RandomForestClassifier(
            n_estimators=N_TREES, random_state=SEED, binning=b)),
        ("ET", lambda b: ExtraTreesClassifier(
            n_estimators=N_TREES, random_state=SEED, binning=b)),
        ("GBM", lambda b: GradientBoostingClassifier(
            n_estimators=N_TREES, max_depth=3, random_state=SEED,
            binning=b)),
    ]


def _run_models_bench():
    X, y = make_classification(
        N_ROWS + N_TEST, N_FEATURES, N_CLASSES, class_sep=1.2,
        nonlinearity=0.3, random_state=SEED,
    )
    X, Xt = X[:N_ROWS], X[N_ROWS:]
    y, yt = y[:N_ROWS], y[N_ROWS:]
    results = {}
    for name, make in _models():
        with Stopwatch(WallClock()) as w_exact:
            exact = make(None).fit(X, y)
        with Stopwatch(WallClock()) as w_binned:
            binned = make(MAX_BINS).fit(X, y)
        pred_e = exact.predict(Xt)
        pred_b = binned.predict(Xt)
        t_e, t_b = w_exact.elapsed, w_binned.elapsed
        results[name] = {
            "acc_binned": round(float((pred_b == yt).mean()), 4),
            "acc_exact": round(float((pred_e == yt).mean()), 4),
            "agreement": round(float((pred_e == pred_b).mean()), 4),
            "binned_s": round(t_b, 3),
            "cells_per_s": round(N_ROWS * N_FEATURES / t_b, 1),
            "exact_s": round(t_e, 3),
            "fits_per_s": round(1.0 / t_b, 4),
            "rows_per_s": round(N_ROWS / t_b, 1),
            "speedup": round(t_e / t_b, 2),
        }
    # kNN: all the cost is inference through the blocked pairwise kernel
    knn = KNeighborsClassifier(n_neighbors=5)
    with Stopwatch(WallClock()) as w_fit:
        knn.fit(X, y)
    with Stopwatch(WallClock()) as w_pred:
        pred = knn.predict(Xt)
    results["kNN"] = {
        "acc": round(float((pred == yt).mean()), 4),
        "fit_s": round(w_fit.elapsed, 3),
        "fits_per_s": round(1.0 / max(w_fit.elapsed, 1e-9), 1),
        "predict_rows_per_s": round(len(Xt) / w_pred.elapsed, 1),
        "predict_s": round(w_pred.elapsed, 3),
    }
    return results


def test_speed_models(benchmark):
    results = benchmark.pedantic(_run_models_bench, rounds=1, iterations=1)
    path = write_bench_json("BENCH_models.json", {
        "config": {
            "max_bins": MAX_BINS,
            "n_classes": N_CLASSES,
            "n_features": N_FEATURES,
            "n_rows": N_ROWS,
            "n_trees": N_TREES,
            "smoke": SMOKE,
        },
        "models": results,
    })
    rows = [
        [name, f"{r['exact_s']:.2f}", f"{r['binned_s']:.2f}",
         f"{r['speedup']:.1f}x", f"{r['agreement']:.3f}",
         f"{r['rows_per_s']:,.0f}", f"{r['fits_per_s']:.2f}"]
        for name, r in results.items() if name != "kNN"
    ]
    knn = results["kNN"]
    emit(f"Model-zoo fit speed — n={N_ROWS:,}, d={N_FEATURES}, "
         f"{N_TREES} trees, {MAX_BINS} bins\n\n"
         + format_table(
             ["model", "exact s", "binned s", "speedup", "agree",
              "rows/s", "fits/s"], rows)
         + f"\n\nkNN predict: {knn['predict_rows_per_s']:,.0f} rows/s "
           f"(fit {knn['fit_s']:.3f}s)\nwrote {path}")
    for name in ("RF", "GBM"):
        r = results[name]
        assert r["speedup"] >= MIN_SPEEDUP, \
            f"{name} binned fit must stay >={MIN_SPEEDUP}x the exact fit"
        assert r["agreement"] >= MIN_AGREEMENT, \
            f"{name} binned predictions must track the exact builder"
    assert results["ET"]["agreement"] >= 0.8  # random-splitter tolerance
    assert abs(results["DT"]["acc_exact"]
               - results["DT"]["acc_binned"]) < 0.05

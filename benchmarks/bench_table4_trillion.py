"""Table 4 — the trillion-prediction workload: kWh, kg CO2 and EUR for 1e12
predictions with each system's best model.

Reproduction targets: TabPFN tops the table by a wide margin; FLAML is the
cheapest; the CO2/EUR columns follow the paper's conversion constants
(0.222 kg/kWh Germany, 0.20 EUR/kWh)."""

from conftest import emit

from repro.experiments import table4


def test_table4_trillion_predictions(benchmark, grid_store):
    t4 = benchmark.pedantic(
        table4, args=(grid_store,), rounds=1, iterations=1,
    )
    emit(t4.render())

    order = [r.system for r in t4.rows]
    assert order[0] == "TabPFN"                    # most expensive
    assert order[-1] in ("FLAML", "TPOT", "CAML")  # cheapest tail

    by = {r.system: r for r in t4.rows}
    # paper's gap: TabPFN ~500x FLAML
    assert by["TabPFN"].energy_kwh > 50 * by["FLAML"].energy_kwh
    # ensemblers sit above the single-model searchers
    assert by["AutoGluon"].energy_kwh > by["FLAML"].energy_kwh

    for row in t4.rows:
        assert row.co2_kg == row.energy_kwh * 0.222
        assert row.cost_eur == row.energy_kwh * 0.20

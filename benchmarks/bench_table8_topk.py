"""Table 8 — development-stage tuning with different numbers of
representative datasets (paper: top-10/20/40 for a 10s budget).

Reproduction targets: more representative datasets cost proportionally more
development energy and time; accuracy is non-degrading (the paper sees
68.6% -> 73.5% going 10 -> 20, flat to 40)."""

from conftest import emit

from repro.devtuning import DevelopmentTuner
from repro.experiments.tables import DevSweepRow, render_dev_sweep


def _sweep_topk():
    rows = []
    for k in (2, 4, 8):
        tuner = DevelopmentTuner(
            search_budget_s=10.0, top_k=k, n_bo_iterations=5,
            runs_per_dataset=1, time_scale=0.004, random_state=5,
        )
        result = tuner.tune()
        import numpy as np

        complete = [t for t in result.trials if not t.pruned and t.per_dataset]
        accs = [a for t in complete for a in t.per_dataset] or [float("nan")]
        rows.append(DevSweepRow(
            setting=k,
            balanced_accuracy_mean=result.mean_balanced_accuracy,
            balanced_accuracy_std=float(np.std(accs)),
            energy_kwh=result.development_energy.kwh,
            hours=result.development_energy.duration_s / 3600.0,
        ))
    return rows


def test_table8_topk_datasets(benchmark):
    rows = benchmark.pedantic(_sweep_topk, rounds=1, iterations=1)
    emit(render_dev_sweep(
        rows, label="top-k Datasets",
        title="Table 8 — tuning cost/quality vs number of representative "
              "datasets (10s budget)",
    ))

    # development energy grows with the number of datasets (paper:
    # 0.43 -> 2.38 -> 4.88 kWh)
    energies = [r.energy_kwh for r in rows]
    assert energies == sorted(energies)
    assert energies[-1] > 1.5 * energies[0]
    # all runs produced a usable accuracy estimate
    assert all(r.balanced_accuracy_mean > 0.4 for r in rows)

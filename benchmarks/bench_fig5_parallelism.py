"""Figure 5 — CPU cores (1/2/4/8) vs execution energy and accuracy for CAML
and AutoGluon.

Reproduction targets (O4): 1 core is Pareto-optimal for CAML (sequential BO;
the paper measures up to 2.7x energy at 8 cores), multi-core is *more*
energy-efficient for AutoGluon (embarrassingly parallel bagging)."""

from conftest import emit

from repro.experiments import run_parallelism_experiment


def test_figure5_parallelism(benchmark):
    fig = benchmark.pedantic(
        run_parallelism_experiment,
        kwargs=dict(
            datasets=("credit-g", "phoneme"),
            budgets=(10.0, 30.0, 60.0),
            core_counts=(1, 2, 4, 8),
            n_runs=2,
            time_scale=0.004,
        ),
        rounds=1, iterations=1,
    )
    emit(fig.render())

    assert fig.pareto_core_count("CAML") == 1
    caml_ratio = fig.energy_ratio("CAML", 8)
    assert 1.5 < caml_ratio < 4.0       # paper: up to 2.7x

    assert fig.pareto_core_count("AutoGluon") in (4, 8)
    assert fig.energy_ratio("AutoGluon", 8) < 1.0

    # energy grows monotonically with cores for the budget-bound system
    ratios = [fig.energy_ratio("CAML", c) for c in (2, 4, 8)]
    assert ratios == sorted(ratios)

"""Figure 6 — configuring AutoML for inference: CAML's inference-time
constraints and AutoGluon's refit ('good quality faster inference') preset.

Reproduction targets (O3): the tightest CAML constraint saves a large share
of inference energy (paper: up to 69%) at a few % accuracy; AutoGluon's
refit preset saves most of its inference energy (paper: up to 79%) but still
costs more than unconstrained CAML because it keeps the ensemble."""

import numpy as np
from conftest import emit

from repro.experiments import run_inference_constraint_experiment


def test_figure6_inference_constraints(benchmark):
    fig = benchmark.pedantic(
        run_inference_constraint_experiment,
        kwargs=dict(
            datasets=("credit-g", "segment"),
            budgets=(10.0, 30.0, 60.0),
            n_runs=3,
            time_scale=0.004,
        ),
        rounds=1, iterations=1,
    )
    emit(fig.render())

    labels = {p.label for p in fig.points}
    tightest = min(l for l in labels if l.startswith("CAML(inf"))

    caml_saving = fig.saving_vs(tightest, "CAML")
    ag_saving = fig.saving_vs("AutoGluon(refit)", "AutoGluon")
    emit(
        f"CAML tightest-constraint inference-energy saving: "
        f"{100 * caml_saving:.0f}% (paper: up to 69%)\n"
        f"AutoGluon refit inference-energy saving: "
        f"{100 * ag_saving:.0f}% (paper: up to 79%)\n"
        f"CAML accuracy cost: "
        f"{100 * fig.accuracy_cost(tightest, 'CAML'):.1f} pp (paper: <=6%)"
    )

    assert caml_saving > 0.2
    assert ag_saving > 0.4
    # accuracy cost stays moderate (paper: <=6%; the scaled constraint grid
    # cuts deeper into the model space, so the tolerance is wider here)
    assert fig.accuracy_cost(tightest, "CAML") < 0.25

    # refit AutoGluon still needs more inference energy than plain CAML
    def mean_inf(label):
        return float(np.mean([
            p.inference_kwh_per_instance for p in fig.points
            if p.label == label
        ]))

    assert mean_inf("AutoGluon(refit)") > mean_inf("CAML")

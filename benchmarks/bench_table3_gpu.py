"""Table 3 — GPU vs CPU on the same T4 testbed, GPU/CPU quotients for
execution and inference (energy and time).

Reproduction targets: TabPFN's inference gets dramatically cheaper and
faster on the GPU (paper: energy x0.13, time x0.07); AutoGluon gets *worse*
everywhere (paper: exec energy x1.35, inference energy x2.39) because most
of its models can't use the accelerator, which then burns idle power."""

from conftest import emit

from repro.experiments import run_gpu_experiment


def test_table3_gpu_vs_cpu(benchmark):
    t3 = benchmark.pedantic(
        run_gpu_experiment,
        kwargs=dict(budget_s=300.0, n_runs=2, time_scale=0.004),
        rounds=1, iterations=1,
    )
    emit(t3.render())

    rows = {r.system: r for r in t3.rows}

    tab = rows["TabPFN"]
    assert tab.inference_energy_ratio < 0.5    # paper: 0.13
    assert tab.inference_time_ratio < 0.3      # paper: 0.07
    assert tab.execution_energy_ratio > 1.0    # paper: 1.37
    assert tab.execution_time_ratio < 1.05     # paper: 0.96

    ag = rows["AutoGluon"]
    assert ag.execution_energy_ratio > 1.0     # paper: 1.35
    assert ag.inference_energy_ratio > 1.0     # paper: 2.39
    assert ag.inference_time_ratio > 1.0       # paper: 1.96

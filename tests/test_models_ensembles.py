"""Forests, extra-trees, boosting."""

import numpy as np
import pytest

from repro.metrics import balanced_accuracy_score
from repro.models import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    RandomForestRegressor,
)


class TestRandomForest:
    def test_beats_chance(self, split_multiclass):
        X_tr, X_te, y_tr, y_te = split_multiclass
        rf = RandomForestClassifier(n_estimators=20, random_state=0)
        rf.fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, rf.predict(X_te)) > 0.6

    def test_improves_over_single_tree(self, split_multiclass):
        X_tr, X_te, y_tr, y_te = split_multiclass
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=0)
        tree.fit(X_tr, y_tr)
        rf = RandomForestClassifier(n_estimators=30, random_state=0)
        rf.fit(X_tr, y_tr)
        tree_acc = balanced_accuracy_score(y_te, tree.predict(X_te))
        rf_acc = balanced_accuracy_score(y_te, rf.predict(X_te))
        assert rf_acc >= tree_acc - 0.02

    def test_n_estimators_respected(self, binary_data):
        X, y = binary_data
        rf = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(rf.estimators_) == 7

    def test_invalid_n_estimators(self, binary_data):
        X, y = binary_data
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(X, y)

    def test_proba_normalised(self, split_binary):
        X_tr, X_te, y_tr, _ = split_binary
        rf = RandomForestClassifier(n_estimators=10, random_state=0)
        proba = rf.fit(X_tr, y_tr).predict_proba(X_te)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_flops_sum_of_trees(self, binary_data):
        X, y = binary_data
        rf = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert rf.inference_flops(10) == pytest.approx(
            sum(t.inference_flops(10) for t in rf.estimators_)
        )

    def test_deterministic(self, binary_data):
        X, y = binary_data
        a = RandomForestClassifier(n_estimators=8, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=8, random_state=1).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestExtraTrees:
    def test_beats_chance(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        xt = ExtraTreesClassifier(n_estimators=20, random_state=0)
        xt.fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, xt.predict(X_te)) > 0.7

    def test_uses_random_splitter_no_bootstrap(self):
        xt = ExtraTreesClassifier()
        assert xt.splitter == "random"
        assert xt.bootstrap is False


class TestRandomForestRegressor:
    def test_fit_quality(self, rng):
        X = rng.uniform(-2, 2, (300, 3))
        y = X[:, 0] ** 2 + X[:, 1]
        reg = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert reg.score(X, y) > 0.8

    def test_predict_with_std_shapes(self, rng):
        X = rng.normal(0, 1, (100, 2))
        y = X[:, 0]
        reg = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        mu, sd = reg.predict_with_std(X[:9])
        assert mu.shape == sd.shape == (9,)
        assert np.all(sd >= 0)

    def test_uncertainty_higher_off_manifold(self, rng):
        X = rng.uniform(-1, 1, (200, 1))
        y = X[:, 0]
        reg = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        _, sd_in = reg.predict_with_std(np.array([[0.0]]))
        _, sd_out = reg.predict_with_std(np.array([[10.0]]))
        assert sd_out[0] >= sd_in[0] - 1e-9


class TestGradientBoosting:
    def test_beats_chance_multiclass(self, split_multiclass):
        X_tr, X_te, y_tr, y_te = split_multiclass
        gb = GradientBoostingClassifier(n_estimators=15, random_state=0)
        gb.fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, gb.predict(X_te)) > 0.6

    def test_more_rounds_fit_train_better(self, binary_data):
        X, y = binary_data
        small = GradientBoostingClassifier(
            n_estimators=2, random_state=0).fit(X, y).score(X, y)
        big = GradientBoostingClassifier(
            n_estimators=30, random_state=0).fit(X, y).score(X, y)
        assert big >= small

    def test_subsample(self, binary_data):
        X, y = binary_data
        gb = GradientBoostingClassifier(
            n_estimators=8, subsample=0.5, random_state=0).fit(X, y)
        assert gb.score(X, y) > 0.7

    def test_proba_valid(self, split_multiclass):
        X_tr, X_te, y_tr, _ = split_multiclass
        gb = GradientBoostingClassifier(n_estimators=5, random_state=0)
        proba = gb.fit(X_tr, y_tr).predict_proba(X_te)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba.min() >= 0

    def test_flops_grow_with_rounds(self, binary_data):
        X, y = binary_data
        small = GradientBoostingClassifier(
            n_estimators=3, random_state=0).fit(X, y).inference_flops(100)
        big = GradientBoostingClassifier(
            n_estimators=20, random_state=0).fit(X, y).inference_flops(100)
        assert big > small


class TestAdaBoost:
    def test_beats_single_stump(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        stump = DecisionTreeClassifier(max_depth=1, random_state=0)
        stump.fit(X_tr, y_tr)
        ada = AdaBoostClassifier(n_estimators=25, random_state=0)
        ada.fit(X_tr, y_tr)
        assert (
            balanced_accuracy_score(y_te, ada.predict(X_te))
            >= balanced_accuracy_score(y_te, stump.predict(X_te))
        )

    def test_weights_positive(self, binary_data):
        X, y = binary_data
        ada = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert all(w > 0 for w in ada.estimator_weights_)

    def test_degenerate_data_keeps_one_stump(self):
        X = np.ones((20, 2))
        y = np.array([0, 1] * 10)
        ada = AdaBoostClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert len(ada.estimators_) >= 1
        assert ada.predict(X).shape == (20,)

    def test_multiclass(self, split_multiclass):
        X_tr, X_te, y_tr, y_te = split_multiclass
        ada = AdaBoostClassifier(n_estimators=20, max_depth=2,
                                 random_state=0).fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, ada.predict(X_te)) > 0.5

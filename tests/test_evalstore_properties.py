"""Property-based tests (hypothesis) on the evaluation store.

The store's contract is algebraic, so it is pinned algebraically:

* merging stores is commutative, associative and idempotent (digest
  equality — byte-level, not just set-level);
* queries are a pure function of store *content*: insertion order never
  shows, and serialised query results are byte-stable;
* persisted OOF probabilities round-trip losslessly through the JSON
  layer (floats via repr round-trip);
* what-if replay over stored rows equals a live Caruana fit over stub
  models carrying the same probabilities — for *any* pool, not just
  the campaign-derived ones the integration tests pin.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ensemble.caruana import CaruanaEnsemble
from repro.evalstore import EvalStore, TrialRecord, config_digest, whatif_ensemble

# keep hypothesis fast and deterministic in CI
FAST = settings(max_examples=25, deadline=None)

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6)
scores = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=0.0, max_value=1.0)


@st.composite
def trial_records(draw, max_cells=3, max_trials=3):
    """A small set of distinct records spread over a few cells."""
    n_cells = draw(st.integers(1, max_cells))
    records = []
    for cell in range(n_cells):
        n_trials = draw(st.integers(1, max_trials))
        for index in range(n_trials):
            config = {"depth": draw(st.integers(0, 9)),
                      "lr": draw(scores)}
            oof = [[draw(scores), draw(scores)] for _ in range(3)]
            records.append(TrialRecord(
                cell_key=f"cell{cell}",
                trial_index=index,
                system=draw(st.sampled_from(["SysA", "SysB"])),
                dataset=draw(st.sampled_from(["ds-a", "ds-b"])),
                budget_s=30.0,
                seed=draw(st.integers(0, 3)),
                time_scale=0.01,
                config=config,
                config_digest=config_digest(config),
                val_score=draw(scores),
                charged_s=draw(st.floats(min_value=1e-6, max_value=10.0,
                                         allow_nan=False)),
                kept=draw(st.booleans()),
                n_train=8,
                classes=[0, 1],
                y_val=[0, 1, 0],
                oof=oof,
            ))
    return records


def build_store(root: Path, records) -> EvalStore:
    store = EvalStore(root)
    for record in records:
        store.put(record)
    return store


@given(records=trial_records(), seed=st.integers(0, 2**16))
@FAST
def test_merge_is_commutative(records, seed):
    rng = np.random.default_rng(seed)
    split = rng.integers(0, 2, size=len(records)).astype(bool)
    left = [r for r, flag in zip(records, split) if flag]
    right = [r for r, flag in zip(records, split) if not flag]
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        ab = build_store(tmp / "a", left)
        ab.merge_from(build_store(tmp / "b", right))
        ba = build_store(tmp / "d", right)
        ba.merge_from(build_store(tmp / "c", left))
        assert ab.digest() == ba.digest()


@given(records=trial_records(), seed=st.integers(0, 2**16))
@FAST
def test_merge_is_associative(records, seed):
    rng = np.random.default_rng(seed)
    bucket = rng.integers(0, 3, size=len(records))
    parts = [[r for r, b in zip(records, bucket) if b == i]
             for i in range(3)]
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # (a ∪ b) ∪ c
        left = build_store(tmp / "l", parts[0])
        left.merge_from(build_store(tmp / "l1", parts[1]))
        left.merge_from(build_store(tmp / "l2", parts[2]))
        # a ∪ (b ∪ c)
        inner = build_store(tmp / "r1", parts[1])
        inner.merge_from(build_store(tmp / "r2", parts[2]))
        right = build_store(tmp / "r", parts[0])
        right.merge_from(inner)
        assert left.digest() == right.digest()


@given(records=trial_records())
@FAST
def test_merge_is_idempotent(records):
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        store = build_store(Path(tmp) / "a", records)
        before = store.digest()
        counts = store.merge_from(store)
        assert counts["written"] == 0
        assert store.digest() == before


@given(records=trial_records(), seed=st.integers(0, 2**16))
@FAST
def test_queries_are_insertion_order_invariant_and_byte_stable(
        records, seed):
    order = np.random.default_rng(seed).permutation(len(records))
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        forward = build_store(tmp / "f", records)
        shuffled = build_store(tmp / "s",
                               [records[i] for i in order])
        assert forward.digest() == shuffled.digest()
        assert forward.records() == shuffled.records()
        for kwargs in ({}, {"dataset": "ds-a"}, {"kept_only": True},
                       {"system": "SysB", "seed": 1}):
            a = forward.query(**kwargs)
            b = shuffled.query(**kwargs)
            assert json.dumps([r.as_dict() for r in a]) \
                == json.dumps([r.as_dict() for r in b])


@given(values=st.lists(finite, min_size=2, max_size=12),
       score=finite)
@FAST
def test_oof_round_trip_is_lossless(values, score):
    """Arbitrary finite floats survive the store's JSON layer exactly
    (repr round-trip), so replayed selection sees the very bits the
    evaluator produced."""
    oof = [values[i:i + 2] for i in range(0, len(values) - 1, 2)]
    config = {"x": 1}
    record = TrialRecord(
        cell_key="cell0", trial_index=0, system="SysA", dataset="ds-a",
        budget_s=30.0, seed=0, time_scale=0.01, config=config,
        config_digest=config_digest(config), val_score=score,
        charged_s=0.5, kept=True, n_train=4, classes=[0, 1],
        y_val=[0, 1], oof=oof,
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = EvalStore(Path(tmp) / "s")
        store.put(record)
        loaded = store.get(record.key)
    assert loaded.oof == oof
    assert loaded.val_score == score or (
        np.isnan(loaded.val_score) and np.isnan(score)
    )
    assert np.asarray(loaded.oof, dtype=float).tolist() \
        == np.asarray(oof, dtype=float).tolist()


class _StubModel:
    """A fitted model whose predict_proba is a stored array."""

    def __init__(self, proba, classes):
        self._proba = np.asarray(proba, dtype=float)
        self.classes_ = np.asarray(classes)

    def predict_proba(self, X):
        return self._proba


@given(
    n_models=st.integers(1, 5),
    n_rows=st.integers(4, 12),
    rounds=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
@FAST
def test_whatif_equals_live_caruana_on_any_pool(
        n_models, n_rows, rounds, seed):
    """For any pool of stored OOF predictions, replayed selection is
    bit-identical to a live CaruanaEnsemble fit over stub models
    carrying the same probabilities."""
    rng = np.random.default_rng(seed)
    y_val = rng.integers(0, 2, size=n_rows)
    y_val[0], y_val[1] = 0, 1   # both classes present
    probas = rng.random((n_models, n_rows, 2))
    probas /= probas.sum(axis=2, keepdims=True)
    val_scores = rng.random(n_models)

    records = []
    for i in range(n_models):
        config = {"stub": i}
        records.append(TrialRecord(
            cell_key="cell0", trial_index=i, system="SysA",
            dataset="ds-a", budget_s=30.0, seed=0, time_scale=0.01,
            config=config, config_digest=config_digest(config),
            val_score=float(val_scores[i]), charged_s=0.5, kept=True,
            n_train=8, classes=[0, 1], y_val=y_val.tolist(),
            oof=probas[i].tolist(),
        ))
    replayed = whatif_ensemble(records, top_k=n_models,
                               max_rounds=rounds, sorted_init=2)

    # the live library is top_models(): stable sort, score descending
    ranked = sorted(range(n_models), key=lambda i: val_scores[i],
                    reverse=True)
    library = [_StubModel(probas[i], [0, 1]) for i in ranked]
    live = CaruanaEnsemble(max_rounds=rounds, sorted_init=2)
    live.fit(library, np.zeros((n_rows, 1)), y_val)

    assert replayed.val_score == live.val_score_
    assert np.array_equal(np.asarray(replayed.weights),
                          np.asarray(live.weights_))

import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_seeds


def test_none_gives_generator():
    assert isinstance(check_random_state(None), np.random.Generator)


def test_int_seed_is_deterministic():
    a = check_random_state(7).integers(0, 1000, 5)
    b = check_random_state(7).integers(0, 1000, 5)
    assert np.array_equal(a, b)


def test_generator_passthrough():
    gen = np.random.default_rng(3)
    assert check_random_state(gen) is gen


def test_legacy_randomstate_wrapped():
    rs = np.random.RandomState(5)
    assert isinstance(check_random_state(rs), np.random.Generator)


def test_numpy_integer_accepted():
    gen = check_random_state(np.int64(11))
    assert isinstance(gen, np.random.Generator)


def test_invalid_type_raises():
    with pytest.raises(TypeError):
        check_random_state("seed")


def test_spawn_seeds_count_and_range():
    seeds = spawn_seeds(0, 10)
    assert len(seeds) == 10
    assert all(0 <= s < 2**31 for s in seeds)


def test_spawn_seeds_distinct():
    seeds = spawn_seeds(1, 50)
    assert len(set(seeds)) == 50


def test_spawn_seeds_deterministic():
    assert spawn_seeds(9, 4) == spawn_seeds(9, 4)

"""KMeans, warm-start meta-database, ASKL2 portfolio."""

import numpy as np
import pytest

from repro.metalearning import (
    KMeans,
    MetaDatabase,
    MetaEntry,
    Portfolio,
    build_meta_database,
    greedy_portfolio,
    portfolio_from_meta_database,
)
from repro.pipeline import build_space


class TestKMeans:
    def _blobs(self, rng):
        centers = np.array([[-5, -5], [5, 5], [5, -5]])
        X = np.vstack([
            rng.normal(c, 0.5, (40, 2)) for c in centers
        ])
        return X

    def test_recovers_blobs(self, rng):
        X = self._blobs(rng)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # each blob should map to a single cluster
        labels = km.labels_
        for i in range(3):
            blob = labels[i * 40:(i + 1) * 40]
            assert len(np.unique(blob)) == 1

    def test_centers_near_truth(self, rng):
        X = self._blobs(rng)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        dists = []
        for truth in ([-5, -5], [5, 5], [5, -5]):
            d = np.min(np.linalg.norm(km.cluster_centers_ - truth, axis=1))
            dists.append(d)
        assert max(dists) < 1.0

    def test_predict_consistent_with_fit(self, rng):
        X = self._blobs(rng)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_inertia_decreases_with_k(self, rng):
        X = self._blobs(rng)
        i2 = KMeans(n_clusters=2, random_state=0).fit(X).inertia_
        i3 = KMeans(n_clusters=3, random_state=0).fit(X).inertia_
        assert i3 < i2

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0).fit(np.zeros((5, 2)))

    def test_deterministic(self, rng):
        X = self._blobs(rng)
        a = KMeans(3, random_state=7).fit(X).labels_
        b = KMeans(3, random_state=7).fit(X).labels_
        assert np.array_equal(a, b)


class TestMetaDatabase:
    def _db(self):
        space = build_space(["decision_tree", "gaussian_nb"],
                            include_feature_preprocessors=False)
        return build_meta_database(
            space, n_repository_datasets=3, n_trials_per_dataset=3,
            top_k=2, random_state=0,
        )

    def test_build_records_energy(self):
        db = self._db()
        assert len(db.entries) == 3
        assert db.development_energy is not None
        assert db.development_energy.kwh > 0

    def test_entries_have_ranked_configs(self):
        db = self._db()
        for entry in db.entries:
            assert 1 <= len(entry.best_configs) <= 2
            scores = entry.best_scores
            assert scores == sorted(scores, reverse=True)

    def test_suggest_returns_configs(self, binary_data):
        X, y = binary_data
        db = self._db()
        suggestions = db.suggest(X, y, n_suggestions=3)
        assert 1 <= len(suggestions) <= 3
        assert all("classifier" in c for c in suggestions)

    def test_suggest_empty_db(self, binary_data):
        X, y = binary_data
        assert MetaDatabase().suggest(X, y) == []

    def test_invalid_build_args(self):
        space = build_space(["gaussian_nb"])
        with pytest.raises(ValueError):
            build_meta_database(space, n_repository_datasets=0)


class TestPortfolio:
    def test_greedy_cover_picks_complementary(self):
        # config 0 great on dataset 0, config 1 great on dataset 1,
        # config 2 mediocre everywhere
        perf = np.array([
            [1.0, 0.0, 0.4],
            [0.0, 1.0, 0.4],
        ])
        configs = [{"id": i} for i in range(3)]
        p = greedy_portfolio(perf, configs, size=2)
        ids = {c["id"] for c in p}
        assert ids == {0, 1}

    def test_first_pick_is_best_average(self):
        perf = np.array([
            [0.5, 0.9],
            [0.5, 0.8],
        ])
        p = greedy_portfolio(perf, [{"id": 0}, {"id": 1}], size=1)
        assert p.configs[0]["id"] == 1

    def test_size_clamped(self):
        perf = np.ones((2, 2))
        p = greedy_portfolio(perf, [{"id": 0}, {"id": 1}], size=10)
        assert len(p) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            greedy_portfolio(np.ones(3), [{}], 1)
        with pytest.raises(ValueError):
            greedy_portfolio(np.ones((2, 2)), [{}], 1)
        with pytest.raises(ValueError):
            greedy_portfolio(np.ones((2, 1)), [{}], 0)

    def test_portfolio_from_meta_database(self):
        db = MetaDatabase(entries=[
            MetaEntry("d0", np.zeros(3), [{"classifier": "a"}], [0.9]),
            MetaEntry("d1", np.zeros(3), [{"classifier": "b"}], [0.8]),
        ])
        p = portfolio_from_meta_database(db, size=2)
        assert len(p) == 2

    def test_empty_database_portfolio(self):
        assert len(portfolio_from_meta_database(MetaDatabase())) == 0

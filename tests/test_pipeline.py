"""Pipeline and config -> pipeline factory tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.models import DecisionTreeClassifier, LogisticRegression
from repro.pipeline import (
    ALL_CLASSIFIERS,
    Pipeline,
    build_pipeline,
    build_space,
    clone_pipeline,
)
from repro.preprocessing import SelectKBest, StandardScaler


class TestPipeline:
    def _pipe(self):
        return Pipeline([
            ("scaler", StandardScaler()),
            ("clf", LogisticRegression()),
        ])

    def test_fit_predict(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        pipe = self._pipe().fit(X_tr, y_tr)
        assert pipe.score(X_te, y_te) > 0.8

    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([("a", StandardScaler()), ("a", LogisticRegression())])

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            self._pipe().predict(np.zeros((2, 3)))

    def test_named_steps(self):
        pipe = self._pipe()
        assert isinstance(pipe.named_steps["scaler"], StandardScaler)

    def test_supervised_transformer_in_pipeline(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        pipe = Pipeline([
            ("select", SelectKBest(k=4)),
            ("clf", LogisticRegression()),
        ]).fit(X_tr, y_tr)
        assert pipe.predict(X_te).shape == y_te.shape

    def test_inference_flops_includes_preprocessing(self, split_binary):
        X_tr, _, y_tr, _ = split_binary
        pipe = self._pipe().fit(X_tr, y_tr)
        clf_only = pipe.named_steps["clf"].inference_flops(100)
        assert pipe.inference_flops(100) > clf_only

    def test_set_params_nested(self):
        pipe = self._pipe()
        pipe.set_params(clf__C=9.0)
        assert pipe.named_steps["clf"].C == 9.0

    def test_set_params_invalid(self):
        with pytest.raises(ValueError):
            self._pipe().set_params(whatever=1)

    def test_clone_pipeline_unfitted(self, split_binary):
        X_tr, _, y_tr, _ = split_binary
        pipe = self._pipe().fit(X_tr, y_tr)
        fresh = clone_pipeline(pipe)
        with pytest.raises(NotFittedError):
            fresh.predict(X_tr)

    def test_proba_normalised(self, split_multiclass):
        X_tr, X_te, y_tr, _ = split_multiclass
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]).fit(X_tr, y_tr)
        assert np.allclose(pipe.predict_proba(X_te).sum(axis=1), 1.0)


class TestBuildPipeline:
    @pytest.mark.parametrize("classifier", ALL_CLASSIFIERS)
    def test_every_classifier_buildable_and_fittable(
        self, classifier, split_binary
    ):
        X_tr, X_te, y_tr, y_te = split_binary
        config = {"classifier": classifier, "imputation": "mean",
                  "scaling": "standard"}
        pipe = build_pipeline(config, n_features=X_tr.shape[1],
                              random_state=0)
        pipe.fit(X_tr, y_tr)
        assert pipe.predict(X_te).shape == y_te.shape

    def test_unknown_classifier(self):
        with pytest.raises(ConfigurationError):
            build_pipeline({"classifier": "svm-rbf"}, n_features=4)

    def test_unknown_scaler(self):
        with pytest.raises(ConfigurationError):
            build_pipeline(
                {"classifier": "gaussian_nb", "scaling": "weird"},
                n_features=4,
            )

    def test_categorical_mask_adds_one_hot(self, split_binary):
        X_tr, _, y_tr, _ = split_binary
        mask = np.zeros(X_tr.shape[1], dtype=bool)
        mask[-1] = True
        pipe = build_pipeline(
            {"classifier": "decision_tree"}, n_features=X_tr.shape[1],
            categorical_mask=mask, random_state=0,
        )
        assert "one_hot" in pipe.named_steps
        pipe.fit(X_tr, y_tr)

    @pytest.mark.parametrize("fp", [
        "pca", "truncated_svd", "select_k_best", "select_percentile",
        "variance_threshold", "random_projection", "feature_agglomeration",
        "polynomial", "quantile", "kbins",
    ])
    def test_every_feature_preprocessor(self, fp, split_binary):
        X_tr, X_te, y_tr, _ = split_binary
        config = {"classifier": "decision_tree",
                  "feature_preprocessor": fp, "fp_fraction": 0.5}
        pipe = build_pipeline(config, n_features=X_tr.shape[1],
                              random_state=0)
        pipe.fit(X_tr, y_tr)
        assert pipe.predict(X_te).shape == (len(X_te),)

    def test_none_feature_preprocessor_passthrough(self, split_binary):
        X_tr, _, y_tr, _ = split_binary
        pipe = build_pipeline(
            {"classifier": "decision_tree", "feature_preprocessor": "none"},
            n_features=X_tr.shape[1], random_state=0,
        )
        assert "feature_preprocessor" not in pipe.named_steps

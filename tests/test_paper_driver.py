"""The one-call paper reproduction driver."""

import pytest

from repro.experiments.paper import PRESETS, reproduce_paper


def test_presets_exist():
    assert set(PRESETS) == {"smoke", "default", "full"}
    assert PRESETS["full"].n_runs == 10
    assert len(PRESETS["full"].datasets) == 39


def test_unknown_preset():
    with pytest.raises(ValueError):
        reproduce_paper("mega")


@pytest.fixture(scope="module")
def smoke():
    return reproduce_paper("smoke", include_campaigns=False)


def test_smoke_reproduction_sections(smoke):
    for key in ("table1", "table2", "figure3", "figure4", "table4",
                "table6", "table7", "dataset_level"):
        assert key in smoke.sections, key


def test_smoke_report_text(smoke):
    report = smoke.report
    assert "Figure 3" in report
    assert "Table 4" in report
    assert "Dataset-level" in report


def test_smoke_store_populated(smoke):
    # 3 systems x 2 datasets x 2 budgets x 1 run
    assert len(smoke.store) == 12


def test_save(tmp_path, smoke):
    path = tmp_path / "report.txt"
    smoke.save(path)
    assert path.read_text().startswith("Table 1")

"""Golden regression tests over a deterministic mini-campaign.

The campaign runs on the simulated budget clock with fixed seeds, so
its aggregate artefacts — the Figure 3 energy/accuracy points and the
Table 1 strategy drivers — are bit-stable across runs and platforms
(floats compare with tolerance for benign ulp drift).  The goldens are
checked-in JSON under ``tests/goldens/``; regenerate deliberately with
``REPRO_REGEN_GOLDENS=1`` and review the diff like any code change.
"""

from dataclasses import asdict

import pytest

from repro.evalstore import (
    EvalStore,
    mine_portfolio,
    trial_front,
    whatif_ensemble,
)
from repro.experiments import ExperimentConfig, run_grid
from repro.experiments.figures import figure3
from repro.systems import SYSTEM_REGISTRY, make_system

CONFIG = ExperimentConfig(
    systems=("TabPFN", "CAML"),
    datasets=("credit-g",),
    budgets=(10.0,),
    n_runs=2,
    time_scale=0.004,
)


@pytest.fixture(scope="module")
def mini_store():
    return run_grid(CONFIG)


def _point_payload(point):
    payload = asdict(point)
    return {key: payload[key] for key in sorted(payload)}


def test_figure3_execution_and_inference_points(mini_store, golden):
    fig = figure3(mini_store)
    points = sorted(fig.points, key=lambda p: (p.system, p.budget_s))
    golden("figure3_smoke.json",
           {"points": [_point_payload(p) for p in points]})


def test_figure3_series_stages_match_golden(mini_store, golden):
    fig = figure3(mini_store)
    golden("figure3_series_smoke.json", {
        "execution": fig.series(stage="execution"),
        "inference": fig.series(stage="inference"),
    })


def test_table1_strategy_drivers(golden):
    cards = {
        name: asdict(make_system(name).strategy_card())
        for name in sorted(SYSTEM_REGISTRY)
    }
    golden("table1_strategies.json", {"cards": cards})


EVALSTORE_CONFIG = ExperimentConfig(
    systems=("AutoSklearn1",),
    datasets=("credit-g",),
    budgets=(30.0,),
    n_runs=2,
    time_scale=0.005,
)


@pytest.fixture(scope="module")
def mini_evalstore(tmp_path_factory):
    """A seeded mini-campaign written through to an evaluation store."""
    root = tmp_path_factory.mktemp("evalstore")
    run_grid(EVALSTORE_CONFIG, eval_store_dir=root)
    return EvalStore(root)


def test_mined_portfolio_matches_golden(mini_evalstore, golden):
    """The greedy submodular portfolio mined from the stored campaign —
    any drift in capture, storage order or mining shows here."""
    portfolio = mine_portfolio(mini_evalstore.records(), size=4)
    golden("evalstore_portfolio.json", {
        "store_digest": mini_evalstore.digest(),
        "configs": portfolio.configs,
    })


def test_pareto_front_matches_golden(mini_evalstore, golden):
    front = trial_front(mini_evalstore.records())
    golden("evalstore_pareto.json",
           {"front": [p.as_dict() for p in front]})


def test_whatif_replay_matches_golden(mini_evalstore, golden):
    """The replayed ensemble for the campaign's first seed: member
    identities, weights and the energy ledger are all pinned."""
    records = mini_evalstore.query(kept_only=True)
    first_seed = min(r.seed for r in records)
    pool = [r for r in records if r.seed == first_seed]
    golden("evalstore_whatif.json",
           whatif_ensemble(pool, top_k=5).as_dict())


def test_mini_campaign_records(mini_store, golden):
    """The raw record payloads themselves — the strongest determinism
    pin: any drift in budget accounting, seeding or scoring shows here
    first."""
    rows = [
        {key: value for key, value in sorted(asdict(r).items())}
        for r in sorted(
            mini_store.records,
            key=lambda r: (r.system, r.dataset,
                           r.configured_seconds, r.seed),
        )
    ]
    golden("mini_campaign_records.json", {"records": rows})

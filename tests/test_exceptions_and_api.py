"""Exception hierarchy and public-API surface checks."""

import inspect

import pytest

import repro
from repro import exceptions


class TestExceptions:
    def test_hierarchy(self):
        for exc in (
            exceptions.NotFittedError,
            exceptions.BudgetExhaustedError,
            exceptions.ConfigurationError,
            exceptions.ConstraintViolationError,
            exceptions.DatasetError,
            exceptions.TrialPruned,
        ):
            assert issubclass(exc, exceptions.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(exceptions.ReproError, Exception)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.datasets
        import repro.energy
        import repro.ensemble
        import repro.experiments
        import repro.hpo
        import repro.metalearning
        import repro.metrics
        import repro.models
        import repro.pipeline
        import repro.preprocessing
        import repro.systems
        import repro.utils

        for module in (
            repro.analysis, repro.datasets, repro.energy, repro.ensemble,
            repro.experiments, repro.hpo, repro.metalearning, repro.metrics,
            repro.models, repro.pipeline, repro.preprocessing, repro.systems,
            repro.utils,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_public_callables_documented(self):
        """Every public class/function in the top-level API has a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_every_module_documented(self):
        import pkgutil

        import repro as pkg

        for info in pkgutil.walk_packages(pkg.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue   # importing it runs the CLI
            module = __import__(info.name, fromlist=["_"])
            assert module.__doc__, f"{info.name} lacks a module docstring"

"""Cross-module integration tests: the paper's observations O1-O4 must hold
end-to-end on the scaled benchmark, and the campaign drivers must produce
coherent artefacts."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.experiments import (
    ExperimentConfig,
    figure3,
    figure4,
    run_grid,
    run_single,
)
from repro.experiments.campaigns import (
    run_gpu_experiment,
    run_inference_constraint_experiment,
    run_parallelism_experiment,
)

FASTSCALE = 0.004

# the module fixture alone runs a 32-cell campaign (~minutes); tier-1
# deselects the whole module via pyproject's `-m 'not slow'`
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def small_grid():
    config = ExperimentConfig(
        systems=("TabPFN", "CAML", "FLAML", "AutoGluon"),
        datasets=("credit-g", "phoneme"),
        budgets=(10.0, 60.0),
        n_runs=2,
        time_scale=FASTSCALE,
    )
    return run_grid(config)


class TestObservationO1:
    """Ensembling systems need >= an order of magnitude more inference
    energy than single-model systems."""

    def test_autogluon_vs_caml_inference(self, small_grid):
        ag = small_grid.mean_over_runs(
            "inference_kwh_per_instance", system="AutoGluon", budget=60.0)
        caml = small_grid.mean_over_runs(
            "inference_kwh_per_instance", system="CAML", budget=60.0)
        assert ag > 5 * caml

    def test_autogluon_many_members(self, small_grid):
        members = [
            r.n_ensemble_members
            for r in small_grid.filter(system="AutoGluon").records
        ]
        assert min(members) >= 4


class TestObservationO2:
    """TabPFN is the most energy-efficient below a prediction-count
    crossover; above it the cheap-model searchers win."""

    def test_tabpfn_cheapest_execution(self, small_grid):
        tab = small_grid.mean_over_runs(
            "execution_kwh", system="TabPFN", budget=60.0)
        for other in ("CAML", "FLAML", "AutoGluon"):
            assert tab < small_grid.mean_over_runs(
                "execution_kwh", system=other, budget=60.0)

    def test_tabpfn_most_expensive_inference(self, small_grid):
        tab = small_grid.mean_over_runs(
            "inference_kwh_per_instance", system="TabPFN", budget=60.0)
        for other in ("CAML", "FLAML", "AutoGluon"):
            assert tab > small_grid.mean_over_runs(
                "inference_kwh_per_instance", system=other, budget=60.0)

    def test_crossover_exists(self, small_grid):
        fig = figure4(small_grid)
        assert fig.crossovers
        n_cross = min(fig.crossovers.values())
        assert fig.winner_at(max(n_cross / 10, 1)) == "TabPFN"


class TestObservationO3:
    """Inference-time constraints cut inference energy at a small accuracy
    cost (Figure 6)."""

    @pytest.fixture(scope="class")
    def fig6(self):
        return run_inference_constraint_experiment(
            datasets=("credit-g", "segment"), budgets=(30.0,), n_runs=3,
            time_scale=FASTSCALE,
        )

    def test_caml_constraint_saves_energy(self, fig6):
        tightest = min(
            (lab for lab in {p.label for p in fig6.points}
             if lab.startswith("CAML(inf")),
        )
        saving = fig6.saving_vs(tightest, "CAML")
        assert saving > 0.2   # paper: up to 69%

    def test_constrained_models_respect_the_limit(self, fig6):
        from repro.energy.machines import DEFAULT_MACHINE, JOULES_PER_KWH

        for p in fig6.points:
            if not p.label.startswith("CAML(inf"):
                continue
            limit = float(p.label.split("<=")[1].rstrip("s)"))
            per_inst_seconds = (
                p.inference_kwh_per_instance * JOULES_PER_KWH
                / DEFAULT_MACHINE.power(1)
            )
            assert per_inst_seconds <= limit * 1.1

    def test_autogluon_refit_saves_energy(self, fig6):
        saving = fig6.saving_vs("AutoGluon(refit)", "AutoGluon")
        assert saving > 0.4   # paper: up to 79%

    def test_refit_autogluon_still_above_plain_caml(self, fig6):
        """Even refit AutoGluon costs more inference energy than CAML."""
        def mean_inf(label):
            return np.mean([
                p.inference_kwh_per_instance for p in fig6.points
                if p.label == label
            ])

        assert mean_inf("AutoGluon(refit)") > mean_inf("CAML")


class TestObservationO4:
    """Parallelism: 1 core Pareto for CAML, multi-core for AutoGluon."""

    @pytest.fixture(scope="class")
    def fig5(self):
        return run_parallelism_experiment(
            datasets=("credit-g",), budgets=(30.0,), n_runs=1,
            core_counts=(1, 8), time_scale=FASTSCALE,
        )

    def test_caml_one_core_energy_optimal(self, fig5):
        assert fig5.pareto_core_count("CAML") == 1
        ratio = fig5.energy_ratio("CAML", 8)
        assert 1.5 < ratio < 4.0   # paper: up to 2.7x

    def test_autogluon_multicore_energy_optimal(self, fig5):
        assert fig5.pareto_core_count("AutoGluon") == 8
        assert fig5.energy_ratio("AutoGluon", 8) < 1.0


class TestGpuTable3:
    @pytest.fixture(scope="class")
    def t3(self):
        return run_gpu_experiment(
            budget_s=60.0, n_runs=1, time_scale=FASTSCALE,
        )

    def test_tabpfn_inference_wins_on_gpu(self, t3):
        row = next(r for r in t3.rows if r.system == "TabPFN")
        assert row.inference_energy_ratio < 0.5   # paper: 0.13
        assert row.inference_time_ratio < 0.3     # paper: 0.07

    def test_autogluon_loses_on_gpu(self, t3):
        row = next(r for r in t3.rows if r.system == "AutoGluon")
        assert row.execution_energy_ratio > 1.0   # paper: 1.35
        assert row.inference_energy_ratio > 1.0   # paper: 2.39


class TestFigure3Shape:
    def test_accuracy_grows_with_budget_for_searchers(self, small_grid):
        fig = figure3(small_grid)
        for system in ("CAML",):
            accs = {
                p.budget_s: p.balanced_accuracy
                for p in fig.points if p.system == system
            }
            assert accs[60.0] >= accs[10.0] - 0.03

    def test_execution_energy_grows_with_budget(self, small_grid):
        fig = figure3(small_grid)
        for system in ("CAML", "FLAML"):
            kwh = {
                p.budget_s: p.execution_kwh
                for p in fig.points if p.system == system
            }
            assert kwh[60.0] > kwh[10.0]


class TestEndToEndQuickstart:
    """The README quickstart must work exactly as documented."""

    def test_quickstart(self):
        from repro import balanced_accuracy_score, load_dataset, make_system

        ds = load_dataset("credit-g")
        automl = make_system("CAML", random_state=0, time_scale=FASTSCALE)
        automl.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        acc = balanced_accuracy_score(ds.y_test, automl.predict(ds.X_test))
        assert acc > 0.6
        assert automl.fit_result_.execution_kwh > 0
        assert automl.inference_kwh_per_instance() > 0

"""ConfigSpace framework + the concrete AutoML spaces."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline import (
    ALL_CLASSIFIERS,
    Categorical,
    ConfigSpace,
    Float,
    Integer,
    LIGHTWEIGHT_CLASSIFIERS,
    build_space,
)


class TestHyperparameters:
    def test_categorical_sample_in_choices(self, rng):
        hp = Categorical("x", ("a", "b", "c"))
        for _ in range(20):
            assert hp.sample(rng) in ("a", "b", "c")

    def test_categorical_perturb_changes_value(self, rng):
        hp = Categorical("x", ("a", "b"))
        assert hp.perturb("a", rng) == "b"

    def test_categorical_single_choice_perturb_noop(self, rng):
        hp = Categorical("x", ("only",))
        assert hp.perturb("only", rng) == "only"

    def test_categorical_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Categorical("x", ())

    def test_categorical_encode(self):
        hp = Categorical("x", ("a", "b", "c"))
        assert hp.encode("a") == 0.0
        assert hp.encode("c") == 1.0

    def test_categorical_encode_unknown(self):
        with pytest.raises(ConfigurationError):
            Categorical("x", ("a",)).encode("z")

    def test_integer_bounds(self, rng):
        hp = Integer("n", 3, 9)
        vals = [hp.sample(rng) for _ in range(50)]
        assert min(vals) >= 3 and max(vals) <= 9

    def test_integer_log_bounds(self, rng):
        hp = Integer("n", 1, 1000, log=True)
        vals = [hp.sample(rng) for _ in range(100)]
        assert min(vals) >= 1 and max(vals) <= 1000
        # log sampling should produce plenty of small values
        assert sum(v < 100 for v in vals) > 30

    def test_integer_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            Integer("n", 5, 2)

    def test_integer_log_needs_positive(self):
        with pytest.raises(ConfigurationError):
            Integer("n", 0, 5, log=True)

    def test_integer_perturb_in_bounds(self, rng):
        hp = Integer("n", 0, 10)
        for _ in range(30):
            assert 0 <= hp.perturb(5, rng) <= 10

    def test_integer_encode(self):
        hp = Integer("n", 0, 10)
        assert hp.encode(0) == 0.0
        assert hp.encode(10) == 1.0
        assert hp.encode(5) == 0.5

    def test_float_bounds(self, rng):
        hp = Float("f", -1.0, 1.0)
        vals = [hp.sample(rng) for _ in range(40)]
        assert min(vals) >= -1.0 and max(vals) <= 1.0

    def test_float_log_sampling(self, rng):
        hp = Float("f", 1e-4, 1.0, log=True)
        vals = [hp.sample(rng) for _ in range(100)]
        assert all(1e-4 <= v <= 1.0 for v in vals)
        assert sum(v < 1e-2 for v in vals) > 20

    def test_float_log_needs_positive(self):
        with pytest.raises(ConfigurationError):
            Float("f", 0.0, 1.0, log=True)

    def test_float_perturb_in_bounds(self, rng):
        hp = Float("f", 0.0, 1.0)
        for _ in range(30):
            assert 0.0 <= hp.perturb(0.5, rng) <= 1.0


class TestConfigSpace:
    def _space(self):
        space = ConfigSpace()
        space.add(Categorical("model", ("tree", "linear")))
        space.add(Integer("depth", 1, 10))
        space.add(Float("C", 0.01, 10.0, log=True))
        space.add_condition("depth", "model", ("tree",))
        space.add_condition("C", "model", ("linear",))
        return space

    def test_duplicate_hp_rejected(self):
        space = ConfigSpace()
        space.add(Integer("a", 0, 1))
        with pytest.raises(ConfigurationError):
            space.add(Float("a", 0, 1))

    def test_condition_unknown_names(self):
        space = ConfigSpace()
        space.add(Integer("a", 0, 1))
        with pytest.raises(ConfigurationError):
            space.add_condition("a", "missing", (1,))
        with pytest.raises(ConfigurationError):
            space.add_condition("missing", "a", (1,))

    def test_sample_respects_conditions(self, rng):
        space = self._space()
        for _ in range(30):
            config = space.sample(rng)
            if config["model"] == "tree":
                assert "depth" in config and "C" not in config
            else:
                assert "C" in config and "depth" not in config

    def test_perturb_keeps_validity(self, rng):
        space = self._space()
        config = space.sample(rng)
        for _ in range(20):
            config = space.perturb(config, rng)
            space.validate(config)

    def test_encode_fixed_width(self, rng):
        space = self._space()
        for _ in range(10):
            vec = space.encode(space.sample(rng))
            assert vec.shape == (3,)
            # inactive slots are -1
            assert np.sum(vec == -1.0) == 1

    def test_validate_rejects_out_of_bounds(self):
        space = self._space()
        with pytest.raises(ConfigurationError):
            space.validate({"model": "tree", "depth": 99})

    def test_validate_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            self._space().validate({"nope": 1})

    def test_len(self):
        assert len(self._space()) == 3


class TestBuiltSpaces:
    def test_full_space_has_15_classifiers(self):
        space = build_space()
        assert set(
            space.hyperparameters["classifier"].choices
        ) == set(ALL_CLASSIFIERS)
        assert len(ALL_CLASSIFIERS) == 15

    def test_caml_space_has_no_feature_preprocessors(self):
        space = build_space(include_feature_preprocessors=False)
        assert "feature_preprocessor" not in space.hyperparameters
        assert "imputation" in space.hyperparameters

    def test_flaml_space_models_only(self):
        space = build_space(
            LIGHTWEIGHT_CLASSIFIERS,
            include_feature_preprocessors=False,
            include_data_preprocessors=False,
        )
        assert "scaling" not in space.hyperparameters
        assert set(space.hyperparameters["classifier"].choices) == set(
            LIGHTWEIGHT_CLASSIFIERS
        )

    def test_unknown_classifier_rejected(self):
        with pytest.raises(ConfigurationError):
            build_space(["transformer-xxl"])

    def test_samples_are_buildable(self, rng, split_binary):
        from repro.pipeline import build_pipeline

        X_tr, _, y_tr, _ = split_binary
        space = build_space()
        for _ in range(10):
            config = space.sample(rng)
            pipe = build_pipeline(config, n_features=X_tr.shape[1],
                                  random_state=0)
            pipe.fit(X_tr[:60], y_tr[:60])

    def test_conditional_params_only_for_their_model(self, rng):
        space = build_space()
        for _ in range(40):
            config = space.sample(rng)
            if config["classifier"] != "mlp":
                assert "mlp_hidden" not in config
            if config["classifier"] not in (
                "decision_tree", "random_forest", "extra_trees"
            ):
                assert "max_depth" not in config

"""Dataset-level analysis (Sec 3.2.1)."""

import numpy as np
import pytest

from repro.analysis.dataset_level import (
    DatasetLevelReport,
    DatasetWinner,
    characteristic_trends,
    dataset_level_analysis,
)
from repro.experiments.results import ResultsStore, RunRecord


def _rec(system, dataset, budget, acc, exec_kwh=1e-3):
    return RunRecord(
        system=system, dataset=dataset, configured_seconds=budget, seed=0,
        balanced_accuracy=acc, execution_kwh=exec_kwh, actual_seconds=budget,
        inference_kwh_per_instance=1e-13,
        inference_seconds_per_instance=1e-6,
    )


@pytest.fixture
def store():
    store = ResultsStore()
    # at 10s: TabPFN wins credit-g, FLAML wins kc1
    store.add(_rec("TabPFN", "credit-g", 10.0, 0.9))
    store.add(_rec("FLAML", "credit-g", 10.0, 0.8))
    store.add(_rec("AutoGluon", "credit-g", 10.0, 0.7))
    store.add(_rec("TabPFN", "kc1", 10.0, 0.6))
    store.add(_rec("FLAML", "kc1", 10.0, 0.85))
    store.add(_rec("AutoGluon", "kc1", 10.0, 0.7))
    # at 300s: AutoGluon wins both
    for ds in ("credit-g", "kc1"):
        store.add(_rec("TabPFN", ds, 300.0, 0.7))
        store.add(_rec("FLAML", ds, 300.0, 0.8))
        store.add(_rec("AutoGluon", ds, 300.0, 0.9, exec_kwh=2e-3))
    return store


def test_winners_per_budget(store):
    report = dataset_level_analysis(store)
    counts10 = report.win_counts(10.0)
    assert counts10 == {"TabPFN": 1, "FLAML": 1}
    counts300 = report.win_counts(300.0)
    assert counts300 == {"AutoGluon": 2}


def test_ensemble_fraction_grows_with_budget(store):
    """The paper's trend: ensembles win the long budgets."""
    report = dataset_level_analysis(store)
    assert report.ensemble_win_fraction(10.0) == 0.0
    assert report.ensemble_win_fraction(300.0) == 1.0


def test_margins_computed(store):
    report = dataset_level_analysis(store)
    w = next(x for x in report.winners
             if x.dataset == "credit-g" and x.budget_s == 10.0)
    assert w.margin == pytest.approx(0.1)
    assert w.runner_up == "FLAML"


def test_execution_std_present(store):
    report = dataset_level_analysis(store)
    assert "AutoGluon" in report.execution_std
    assert report.execution_std["AutoGluon"] >= 0.0


def test_render(store):
    text = dataset_level_analysis(store).render()
    assert "winner" in text
    assert "@10s wins" in text


def test_characteristic_trends(store):
    report = dataset_level_analysis(store)
    stats = characteristic_trends(report)
    # TabPFN's single win is on credit-g (1000 paper rows < 5k)
    assert stats["tabpfn_small_row_fraction"] == 1.0
    assert "ensemble_many_class_score" in stats


def test_empty_store():
    report = dataset_level_analysis(ResultsStore())
    assert report.winners == []
    assert np.isnan(report.ensemble_win_fraction(10.0))

"""Cross-cutting estimator contract tests: every public classifier must
survive clone -> fit -> predict, params round-trips, and single-column
input; every transformer must be idempotent on transform."""

import numpy as np
import pytest

from repro.models import (
    AdaBoostClassifier,
    BernoulliNB,
    DecisionTreeClassifier,
    DummyClassifier,
    ExtraTreesClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearDiscriminantAnalysis,
    LogisticRegression,
    MLPClassifier,
    MultinomialNB,
    PriorFittedNetwork,
    QuadraticDiscriminantAnalysis,
    RandomForestClassifier,
    RidgeClassifier,
    SGDClassifier,
    clone,
)
from repro.preprocessing import (
    KBinsDiscretizer,
    MinMaxScaler,
    Normalizer,
    PCA,
    PolynomialFeatures,
    QuantileTransformer,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
    TruncatedSVD,
    VarianceThreshold,
)

ALL_CLASSIFIERS = [
    DecisionTreeClassifier(max_depth=4, random_state=0),
    RandomForestClassifier(n_estimators=5, random_state=0),
    ExtraTreesClassifier(n_estimators=5, random_state=0),
    GradientBoostingClassifier(n_estimators=4, random_state=0),
    AdaBoostClassifier(n_estimators=5, random_state=0),
    LogisticRegression(max_iter=30),
    SGDClassifier(max_iter=5, random_state=0),
    RidgeClassifier(),
    GaussianNB(),
    MultinomialNB(),
    BernoulliNB(),
    KNeighborsClassifier(n_neighbors=3),
    MLPClassifier(max_iter=5, random_state=0),
    LinearDiscriminantAnalysis(),
    QuadraticDiscriminantAnalysis(),
    DummyClassifier(),
    PriorFittedNetwork(embed_dim=32, n_layers=2),
]

ALL_TRANSFORMERS = [
    SimpleImputer(),
    StandardScaler(),
    MinMaxScaler(),
    RobustScaler(),
    Normalizer(),
    VarianceThreshold(),
    PCA(n_components=2),
    TruncatedSVD(n_components=2),
    PolynomialFeatures(degree=2),
    QuantileTransformer(n_quantiles=16),
    KBinsDiscretizer(n_bins=3),
]


@pytest.mark.parametrize(
    "estimator", ALL_CLASSIFIERS, ids=lambda e: type(e).__name__)
class TestClassifierContract:
    def test_clone_fit_predict(self, estimator, split_binary):
        X_tr, X_te, y_tr, _ = split_binary
        model = clone(estimator)
        model.fit(X_tr, y_tr)
        preds = model.predict(X_te)
        assert preds.shape == (len(X_te),)
        assert set(preds).issubset(set(model.classes_))

    def test_params_roundtrip_via_clone(self, estimator):
        params = estimator.get_params()
        copy = clone(estimator)
        assert copy.get_params().keys() == params.keys()

    def test_single_feature_input(self, estimator, rng):
        X = rng.normal(0, 1, (80, 1))
        y = (X[:, 0] > 0).astype(int)
        model = clone(estimator)
        model.fit(X, y)
        assert model.predict(X[:5]).shape == (5,)

    def test_refit_overwrites_state(self, estimator, split_binary, rng):
        """Fitting twice must reflect only the second dataset."""
        X_tr, _, y_tr, _ = split_binary
        model = clone(estimator)
        model.fit(X_tr, y_tr)
        X2 = rng.normal(0, 1, (60, X_tr.shape[1]))
        y2 = rng.integers(0, 3, 60)
        y2[:3] = [0, 1, 2]
        model.fit(X2, y2)
        assert len(model.classes_) == 3

    def test_inference_flops_positive(self, estimator, split_binary):
        X_tr, _, y_tr, _ = split_binary
        model = clone(estimator)
        model.fit(X_tr, y_tr)
        assert model.inference_flops(10) > 0


@pytest.mark.parametrize(
    "transformer", ALL_TRANSFORMERS, ids=lambda t: type(t).__name__)
class TestTransformerContract:
    def test_fit_transform_equals_fit_then_transform(
        self, transformer, split_binary
    ):
        X_tr, _, y_tr, _ = split_binary
        t1 = clone(transformer)
        a = t1.fit_transform(X_tr, y_tr)
        t2 = clone(transformer)
        t2.fit(X_tr, y_tr)
        b = t2.transform(X_tr)
        assert np.allclose(a, b)

    def test_transform_deterministic(self, transformer, split_binary):
        X_tr, X_te, y_tr, _ = split_binary
        t = clone(transformer)
        t.fit(X_tr, y_tr)
        assert np.allclose(t.transform(X_te), t.transform(X_te))

    def test_output_finite(self, transformer, split_binary):
        X_tr, X_te, y_tr, _ = split_binary
        t = clone(transformer)
        out = t.fit(X_tr, y_tr).transform(X_te)
        assert np.isfinite(out).all()

    def test_transform_flops_positive(self, transformer, split_binary):
        X_tr, _, y_tr, _ = split_binary
        t = clone(transformer)
        t.fit(X_tr, y_tr)
        assert t.transform_flops(10) > 0

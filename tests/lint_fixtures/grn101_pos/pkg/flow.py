"""Known-positive for GRN101: a wall-clock read three frames from the
sink still reaches the cache, and raw np.random reaches the journal."""

import time

import numpy as np


def stamp():
    return time.time()


def key_for(suffix):
    return f"cell-{suffix}"


def persist(cache, value):
    # interprocedural: clock -> stamp() return -> key_for() passthrough
    token = stamp()
    cache.put(key_for(token), value)


def log_draw(journal):
    draw = np.random.rand()
    journal.record_cell(draw)

"""Known-negative for GRN104: column-partition loops and blocked
(strided) batch loops keep total work O(n*d) — no full-array rescans."""


class Model:
    def fit(self, X, y):
        d = X.shape[1]
        self.stats = [0.0] * d
        for j in range(d):
            col = X[:, j]
            self.stats[j] = col.mean()
        return self

    def predict(self, X):
        out = []
        for start in range(0, len(X), 64):
            block = X[start:start + 64]
            out.extend(block.sum(axis=1))
        return out

"""Known-positive for GRN104: per-class mask rescans and direct
row iteration over a numpy array, in a hot-layer path."""

import numpy as np


class Model:
    def fit(self, X, y):
        k = 3
        self.mu = []
        for c in range(k):
            rows = X[y == c]
            self.mu.append(rows.mean(axis=0))
        return self

    def predict(self, X):
        order = np.argsort(X[:, 0])
        out = []
        for row in order:
            out.append(X[row].sum())
        return out

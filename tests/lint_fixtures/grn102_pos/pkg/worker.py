"""Known-positive for GRN102: a pool-worker entry point mutates
module-level state (directly and through a callee), and carries an
unsanctioned lru_cache."""

from functools import lru_cache

_SEEN = {}


def note(x):
    _SEEN[x] = True


@lru_cache(maxsize=8)
def work(x):
    note(x)
    return x * 2


def launch(pool, xs):
    futures = [pool.submit(work, x) for x in xs]
    return [f.result() for f in futures]

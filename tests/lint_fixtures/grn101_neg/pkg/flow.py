"""Known-negative for GRN101: seeded RNG, sanitized set iteration and
pure values may persist freely."""

import numpy as np


def key_for(seed):
    rng = np.random.default_rng(seed)
    return float(rng.random())


def persist(cache, seed, value):
    cache.put(key_for(seed), value)


def ordered_names(journal, names):
    pending = set(names)
    for name in sorted(pending):   # sorted() fixes the order
        journal.record_cell(name)

"""Known-positive for GRN103: happy-path-only cleanup.  The shutdown
and close calls run only when no job raises, so the pool and the file
leak on the exception path."""

from concurrent.futures import ProcessPoolExecutor


def run(jobs):
    pool = ProcessPoolExecutor(max_workers=2)
    futures = [pool.submit(job) for job in jobs]
    results = [f.result() for f in futures]
    pool.shutdown()
    return results


def append_log(path, lines):
    fh = open(path, "a")
    for line in lines:
        fh.write(line)
    fh.close()

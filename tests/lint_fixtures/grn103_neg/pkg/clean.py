"""Known-negative for GRN103: every resource is either context-managed,
shut down in a finally block, or handed off to an owner."""

from concurrent.futures import ProcessPoolExecutor


def run(jobs):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return [pool.submit(job).result() for job in jobs]
    finally:
        pool.shutdown()


def append_log(path, lines):
    with open(path, "a") as fh:
        for line in lines:
            fh.write(line)


class Owner:
    def __init__(self, path):
        # ownership transfer: the instance is responsible for closing
        self._fh = open(path, "a")

    def close(self):
        self._fh.close()

"""Known-negative for GRN102: workers keep all state local and ship
results back through return values."""

_LIMITS = (1, 2, 3)   # immutable module constant: reads are fine


def work(x):
    local = {}
    local[x] = max(_LIMITS)
    return sum(local.values())


def launch(pool, xs):
    futures = [pool.submit(work, x) for x in xs]
    return [f.result() for f in futures]

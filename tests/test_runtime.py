"""Campaign runtime: cells, cache, journal, progress, executor."""

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict

import pytest

from repro.datasets.loaders import load_dataset
from repro.experiments import ExperimentConfig, grid_cells, run_grid
from repro.experiments.results import RunRecord
from repro.runtime import (
    CampaignExecutor,
    CampaignJournal,
    CellSpec,
    ResultCache,
    RetryPolicy,
)

#: cheap cells (sub-second each) shared across tests
FAST = dict(budget_s=10.0, seed=7, time_scale=0.004)


def _cells(systems=("TabPFN", "CAML"), datasets=("credit-g",)):
    return [
        CellSpec(system=s, dataset=d, **FAST)
        for d in datasets for s in systems
    ]


def _dead_pid() -> int:
    """A pid that is guaranteed not to name a live process."""
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    return proc.pid


def _record(**over):
    base = dict(
        system="CAML", dataset="credit-g", configured_seconds=10.0,
        seed=7, balanced_accuracy=0.7, execution_kwh=1e-5,
        actual_seconds=0.1, inference_kwh_per_instance=1e-12,
        inference_seconds_per_instance=1e-6,
    )
    return RunRecord(**{**base, **over})


class TestCellSpec:
    def test_cache_key_is_stable(self):
        a = CellSpec("CAML", "credit-g", **FAST)
        b = CellSpec("CAML", "credit-g", **FAST)
        assert a.cache_key("fp") == b.cache_key("fp")

    @pytest.mark.parametrize("change", [
        {"system": "FLAML"},
        {"dataset": "kc1"},
        {"budget_s": 30.0},
        {"seed": 8},
        {"time_scale": 0.005},
        {"n_cores": 2},
        {"use_gpu": True},
        {"system_kwargs": {"population_size": 9}},
    ])
    def test_cache_key_covers_every_input(self, change):
        base = CellSpec("CAML", "credit-g", **FAST)
        other = CellSpec(**{**asdict(base), **change})
        assert base.cache_key("fp") != other.cache_key("fp")

    def test_cache_key_covers_dataset_fingerprint(self):
        spec = CellSpec("CAML", "credit-g", **FAST)
        assert spec.cache_key("fp-a") != spec.cache_key("fp-b")

    def test_kwargs_digest_is_order_independent(self):
        a = CellSpec("CAML", "credit-g", **FAST,
                     system_kwargs={"x": 1, "y": 2})
        b = CellSpec("CAML", "credit-g", **FAST,
                     system_kwargs={"y": 2, "x": 1})
        assert a.cache_key("fp") == b.cache_key("fp")


class TestDatasetFingerprint:
    def test_deterministic_across_materialisations(self):
        assert (load_dataset("credit-g").fingerprint()
                == load_dataset("credit-g").fingerprint())

    def test_differs_across_datasets_and_splits(self):
        base = load_dataset("credit-g").fingerprint()
        assert base != load_dataset("kc1").fingerprint()
        assert base != load_dataset(
            "credit-g", split_seed=1).fingerprint()

    def test_subsample_changes_fingerprint(self):
        ds = load_dataset("credit-g")
        assert ds.subsample(20, random_state=0).fingerprint() \
            != ds.fingerprint()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, _record())
        assert cache.get("ab" + "0" * 62) == _record()
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _record())
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_orphaned_tmp_files_swept_on_init(self, tmp_path):
        # a crash between tmp.write_text and os.replace strands the tmp
        key = "ab" + "0" * 62
        first = ResultCache(tmp_path)
        first.put(key, _record())
        orphan = first._path(key).with_suffix(f".tmp.{_dead_pid()}")
        orphan.write_text("half-written payload")
        reopened = ResultCache(tmp_path)
        assert not orphan.exists()
        assert reopened.get(key) == _record()   # real entries untouched

    def test_live_owner_tmp_file_survives_init_sweep(self, tmp_path):
        # a tmp file owned by a LIVE pid may be a concurrent campaign
        # mid-put; sweeping it would break that process's os.replace
        key = "ab" + "0" * 62
        cache = ResultCache(tmp_path)
        live = cache._path(key).with_suffix(f".tmp.{os.getpid()}")
        live.parent.mkdir(parents=True, exist_ok=True)
        live.write_text("someone else is mid-put")
        ResultCache(tmp_path)
        assert live.exists()

    def test_clear_removes_tmp_files(self, tmp_path):
        # clear() is an explicit wipe: even live-owner tmp files go
        key = "ab" + "0" * 62
        cache = ResultCache(tmp_path)
        cache.put(key, _record())
        orphan = cache._path(key).with_suffix(f".tmp.{os.getpid()}")
        orphan.write_text("half-written payload")
        cache.clear()
        assert not orphan.exists()
        assert len(cache) == 0


class TestJournal:
    def test_replay_round_trips_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = _record()
        with CampaignJournal(path) as journal:
            journal.open_campaign(3)
            journal.record_cell(0, "k0", record)
            journal.record_skip(1, "k1", "below min budget")
            journal.record_failure(2, "k2", 1, "boom")
        state = CampaignJournal.load(path)
        assert state.n_cells == 3
        assert state.completed["k0"] == record
        assert state.skipped == {"k1"}
        assert state.failures[0]["error"] == "boom"

    def test_torn_tail_is_tolerated(self, tmp_path, recwarn):
        path = tmp_path / "j.jsonl"
        record = _record()
        with CampaignJournal(path) as journal:
            journal.record_cell(0, "k0", record)
        with open(path, "a") as fh:
            fh.write('{"type": "cell", "index": 1, "key')   # crash artefact
        state = CampaignJournal.load(path)
        assert list(state.completed) == ["k0"]
        assert state.skipped_lines == 0     # a torn tail is not damage
        assert len(recwarn) == 0

    def test_corrupt_middle_line_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_cell(0, "k0", _record())
            journal.record_cell(1, "k1", _record(seed=8))
            journal.record_cell(2, "k2", _record(seed=9))
        lines = path.read_text().splitlines()
        lines[1] = '{"type": "cell", "index": 1, "ke'   # mid-file damage
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="1 corrupt line"):
            state = CampaignJournal.load(path)
        # replay must NOT stop at the damage: k2 is still completed
        assert sorted(state.completed) == ["k0", "k2"]
        assert state.skipped_lines == 1

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(CampaignJournal.load(tmp_path / "absent.jsonl")) == 0


class TestExecutor:
    def test_warm_cache_rerun_executes_zero_cells(self, tmp_path):
        cells = _cells()
        cache = ResultCache(tmp_path / "cache")
        cold = CampaignExecutor(workers=1, cache=cache)
        cold_store = cold.run(cells)
        assert cold.tracker.executed == len(cells)
        warm = CampaignExecutor(workers=1, cache=cache)
        warm_store = warm.run(cells)
        assert warm.tracker.executed == 0
        assert warm.tracker.cached == len(cells)
        assert [asdict(r) for r in warm_store.records] \
            == [asdict(r) for r in cold_store.records]

    def test_below_min_budget_cell_is_skipped(self):
        cells = _cells(systems=("TabPFN", "TPOT"))   # TPOT needs >= 60s
        executor = CampaignExecutor(workers=1)
        store = executor.run(cells)
        assert [r.system for r in store.records] == ["TabPFN"]
        assert executor.tracker.skipped == 1
        assert executor.last_results[1] is None

    def test_crash_resume_completes_only_remaining(self, tmp_path):
        cells = _cells(datasets=("credit-g",
                                 "blood-transfusion-service-center"))
        reference = CampaignExecutor(workers=1).run(cells)
        journal_path = tmp_path / "campaign.jsonl"
        # simulate the crash: a first campaign only got through 2 cells
        CampaignExecutor(
            workers=1, journal=CampaignJournal(journal_path),
        ).run(cells[:2])
        resumed = CampaignExecutor(
            workers=1, journal=CampaignJournal(journal_path), resume=True,
        )
        store = resumed.run(cells)
        assert resumed.tracker.resumed == 2
        assert resumed.tracker.executed == len(cells) - 2
        assert [asdict(r) for r in store.records] \
            == [asdict(r) for r in reference.records]

    def test_quarantine_after_retries(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        calls = []

        def explode(*args, **kwargs):
            calls.append(1)
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(runner_mod, "run_single", explode)
        journal_path = tmp_path / "j.jsonl"
        executor = CampaignExecutor(
            workers=1, journal=CampaignJournal(journal_path),
            policy=RetryPolicy(max_retries=2, retry_backoff_s=0.0),
        )
        store = executor.run(_cells(systems=("CAML",)))
        assert len(calls) == 3   # first try + 2 retries
        record = store.records[0]
        assert record.failed
        assert "quarantined" in record.note
        assert 0.0 <= record.balanced_accuracy <= 0.6   # prior baseline
        events = [json.loads(line) for line
                  in journal_path.read_text().splitlines()]
        assert sum(e["type"] == "failure" for e in events) == 3

    def test_retry_backoff_runs_through_injected_sleep(
            self, monkeypatch):
        import repro.experiments.runner as runner_mod

        def explode(*args, **kwargs):
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(runner_mod, "run_single", explode)
        naps = []
        executor = CampaignExecutor(
            workers=1,
            policy=RetryPolicy(max_retries=2, retry_backoff_s=10.0,
                               sleep=naps.append),
        )
        store = executor.run(_cells(systems=("CAML",)))
        # linear backoff: 10s after attempt 1, 20s after attempt 2 —
        # recorded by the hook, zero real seconds slept
        assert naps == [10.0, 20.0]
        assert store.records[0].failed

    def test_progress_telemetry(self):
        events = []
        executor = CampaignExecutor(
            workers=1, progress_callback=events.append,
        )
        executor.run(_cells())
        assert [e.done for e in events] == [1, 2]
        final = events[-1]
        assert final.total == 2 and final.executed == 2
        assert final.execution_kwh > 0
        assert final.cells_per_second > 0
        assert sum(w.cells for w in final.workers.values()) == 2
        assert sum(w.execution_kwh for w in final.workers.values()) \
            == pytest.approx(final.execution_kwh)
        assert "cells/s" in final.render()

    def test_pooled_results_identical_to_serial(self):
        cells = _cells(datasets=("credit-g",
                                 "blood-transfusion-service-center"))
        serial = CampaignExecutor(workers=1).run(cells)
        pooled = CampaignExecutor(workers=2).run(cells)
        assert [asdict(r) for r in pooled.records] \
            == [asdict(r) for r in serial.records]

    def test_quarantine_note_survives_empty_error(self):
        from repro.runtime.executor import _Pending
        from repro.runtime.progress import ProgressTracker

        executor = CampaignExecutor(workers=1)
        executor.tracker = ProgressTracker(1)
        cells = _cells(systems=("CAML",))
        item = _Pending(0, cells[0], "k0", attempts=1)
        results = [None]
        executor._quarantine(item, results, "")   # empty error string
        assert results[0].failed
        assert "unknown error" in results[0].note


class TestPooledScheduler:
    """The completion-order streaming pool (workers>1).

    The monkeypatched ``run_single`` wrappers propagate into pool
    workers because ProcessPoolExecutor forks them lazily on first
    submit, after the patch is applied.
    """

    CELLS = dict(datasets=("credit-g",
                           "blood-transfusion-service-center"))

    def test_bit_identical_under_out_of_order_completion(
            self, monkeypatch):
        import repro.experiments.runner as runner_mod

        cells = _cells(**self.CELLS)
        serial = CampaignExecutor(workers=1).run(cells)

        real = runner_mod.run_single
        first = (cells[0].system, cells[0].dataset)

        def slow_first(system, dataset, *args, **kwargs):
            # the grid's first cell finishes LAST: every sibling
            # completes (and must commit) while it is still running
            if (system, dataset.name) == first:
                time.sleep(0.5)
            return real(system, dataset, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_single", slow_first)
        executor = CampaignExecutor(workers=2)
        pooled = executor.run(cells)
        assert [asdict(r) for r in pooled.records] \
            == [asdict(r) for r in serial.records]
        assert executor.pool_rebuilds == 0

    def test_timeout_quarantines_only_the_hung_cell(
            self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        cells = _cells(**self.CELLS)
        serial = CampaignExecutor(workers=1).run(cells)

        real = runner_mod.run_single
        hung = (cells[0].system, cells[0].dataset)

        def hang_first(system, dataset, *args, **kwargs):
            if (system, dataset.name) == hung:
                time.sleep(30.0)   # never finishes; killed at shutdown
            return real(system, dataset, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_single", hang_first)
        journal_path = tmp_path / "j.jsonl"
        cache = ResultCache(tmp_path / "cache")
        # the timeout must separate the hung cell from its siblings with
        # a wide margin in BOTH directions: far below the 30s hang, far
        # above a sibling's worst case on a loaded box
        executor = CampaignExecutor(
            workers=2, cache=cache,
            journal=CampaignJournal(journal_path),
            policy=RetryPolicy(max_retries=0, cell_timeout_s=2.0),
        )
        executor.run(cells)
        # only the hung cell was quarantined ...
        quarantined = executor.last_results[0]
        assert quarantined.failed
        assert "cell timeout" in quarantined.note
        # ... every sibling committed its real result to results,
        # cache and journal, with no pool rebuild
        for i in range(1, len(cells)):
            assert asdict(executor.last_results[i]) \
                == asdict(serial.records[i])
        assert executor.pool_rebuilds == 0
        assert len(cache) == len(cells)
        events = [json.loads(line) for line
                  in journal_path.read_text().splitlines()]
        committed = {e["index"] for e in events if e["type"] == "cell"}
        assert committed == set(range(len(cells)))
        assert sum(e["type"] == "failure" for e in events) == 1

    def test_all_workers_wedged_requeues_and_replaces_pool(
            self, monkeypatch):
        import repro.experiments.runner as runner_mod

        cells = _cells(**self.CELLS)
        serial = CampaignExecutor(workers=1).run(cells)

        real = runner_mod.run_single
        # both credit-g cells hang: with workers=2 they wedge every
        # worker while the blood-transfusion cells sit queued behind
        # them — the queued futures must be cancelled and requeued, not
        # left in flight forever (livelock)
        hung = {(c.system, c.dataset) for c in cells[:2]}

        def hang_first_two(system, dataset, *args, **kwargs):
            if (system, dataset.name) in hung:
                time.sleep(15.0)   # far past the deadline
            return real(system, dataset, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_single", hang_first_two)
        executor = CampaignExecutor(
            workers=2,
            policy=RetryPolicy(max_retries=0, cell_timeout_s=1.0),
        )
        executor.run(cells)
        for i in (0, 1):
            assert executor.last_results[i].failed
            assert "cell timeout" in executor.last_results[i].note
        # the queued cells ran to completion on the replacement pool
        for i in (2, 3):
            assert asdict(executor.last_results[i]) \
                == asdict(serial.records[i])
        assert executor.pool_rebuilds == 1
        # every pool worker — wedged or replacement — was killed and
        # reaped; none survives past the campaign
        for pid in executor.tracker.workers:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_warm_pool_survives_retries(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        cells = _cells(systems=("TabPFN", "CAML", "TabPFN"))
        serial = CampaignExecutor(workers=1).run(cells)

        real = runner_mod.run_single
        flag = tmp_path / "already-failed-once"

        def fail_caml_once(system, dataset, *args, **kwargs):
            if system == "CAML" and not flag.exists():
                flag.write_text("tripped")
                raise RuntimeError("injected transient crash")
            return real(system, dataset, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_single", fail_caml_once)
        executor = CampaignExecutor(
            workers=2,
            policy=RetryPolicy(max_retries=2, retry_backoff_s=0.0),
        )
        store = executor.run(cells)
        # the retry ran in the SAME pool: no rebuild, and workers
        # report warm dataset-cache hits from their persistent caches
        assert executor.pool_rebuilds == 0
        assert [asdict(r) for r in store.records] \
            == [asdict(r) for r in serial.records]
        assert not any(r.failed for r in store.records)
        assert sum(s.warm_hits
                   for s in executor.tracker.workers.values()) >= 1

    def test_resume_skips_cells_after_corrupt_middle_line(
            self, tmp_path):
        cells = _cells(**self.CELLS)
        reference = CampaignExecutor(workers=1).run(cells)
        journal_path = tmp_path / "campaign.jsonl"
        CampaignExecutor(
            workers=1, journal=CampaignJournal(journal_path),
        ).run(cells)
        lines = journal_path.read_text().splitlines()
        # damage the SECOND completed cell (campaign header is line 0)
        lines[2] = lines[2][:25]
        journal_path.write_text("\n".join(lines) + "\n")
        resumed = CampaignExecutor(
            workers=1, journal=CampaignJournal(journal_path),
            resume=True,
        )
        with pytest.warns(UserWarning, match="corrupt line"):
            store = resumed.run(cells)
        # the cells journalled AFTER the damage still resume; only the
        # damaged cell re-executes
        assert resumed.tracker.resumed == len(cells) - 1
        assert resumed.tracker.executed == 1
        assert [asdict(r) for r in store.records] \
            == [asdict(r) for r in reference.records]


class TestRunGridIntegration:
    CONFIG = ExperimentConfig(
        systems=("TabPFN", "CAML"), datasets=("credit-g",),
        budgets=(10.0,), n_runs=2, time_scale=0.004,
    )

    def test_grid_cells_preserves_order_and_seeds(self):
        cells = grid_cells(self.CONFIG)
        assert [c.seed for c in cells] == [7, 1016, 7, 1016]
        assert [c.system for c in cells] \
            == ["TabPFN", "TabPFN", "CAML", "CAML"]

    def test_run_grid_with_cache_and_journal(self, tmp_path):
        store = run_grid(
            self.CONFIG, workers=1, cache_dir=tmp_path / "cache",
            journal_path=tmp_path / "j.jsonl",
        )
        assert len(store) == self.CONFIG.n_cells
        rerun = run_grid(
            self.CONFIG, workers=1, cache_dir=tmp_path / "cache",
            journal_path=tmp_path / "j2.jsonl",
        )
        assert [asdict(r) for r in rerun.records] \
            == [asdict(r) for r in store.records]

    def test_run_grid_resume_requires_journal(self):
        with pytest.raises(ValueError):
            run_grid(self.CONFIG, resume=True)

"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.amortization import SystemEnergyProfile, crossover_point
from repro.datasets import make_classification
from repro.energy.machines import XEON_GOLD_6132
from repro.metrics import balanced_accuracy_score, confusion_matrix
from repro.pipeline import Categorical, ConfigSpace, Float, Integer

# keep hypothesis fast and deterministic in CI
FAST = settings(max_examples=30, deadline=None)


labels = st.lists(st.integers(0, 4), min_size=1, max_size=60)


@given(y=labels)
@FAST
def test_balanced_accuracy_perfect_prediction_is_one(y):
    assert balanced_accuracy_score(y, y) == 1.0


@given(y=labels, p=labels)
@FAST
def test_balanced_accuracy_bounded(y, p):
    p = (p * ((len(y) // len(p)) + 1))[: len(y)]
    score = balanced_accuracy_score(y, p)
    assert 0.0 <= score <= 1.0


@given(y=labels)
@FAST
def test_confusion_matrix_total_equals_samples(y):
    p = list(reversed(y))
    cm = confusion_matrix(y, p)
    assert cm.sum() == len(y)


@given(
    y=labels.filter(lambda v: len(set(v)) >= 2),
    shift=st.integers(1, 4),
)
@FAST
def test_balanced_accuracy_permutation_invariant(y, shift):
    """Relabelling classes consistently must not change the score."""
    y = np.asarray(y)
    p = np.roll(y, 1)
    score_a = balanced_accuracy_score(y, p)
    score_b = balanced_accuracy_score(y + 10 * shift, p + 10 * shift)
    assert np.isclose(score_a, score_b)


@given(
    n=st.integers(20, 80),
    d=st.integers(2, 8),
    k=st.integers(2, 4),
    seed=st.integers(0, 10_000),
)
@FAST
def test_make_classification_invariants(n, d, k, seed):
    X, y = make_classification(n, d, k, random_state=seed)
    assert X.shape == (n, d)
    assert np.isfinite(X).all()
    assert set(np.unique(y)) == set(range(k))
    counts = np.bincount(y, minlength=k)
    assert counts.min() >= 2


@st.composite
def config_spaces(draw):
    space = ConfigSpace()
    space.add(Categorical("c", tuple(
        draw(st.lists(st.text(min_size=1, max_size=3), min_size=2,
                      max_size=4, unique=True))
    )))
    lo = draw(st.integers(0, 10))
    hi = lo + draw(st.integers(1, 20))
    space.add(Integer("i", lo, hi))
    flo = draw(st.floats(0.001, 1.0))
    space.add(Float("f", flo, flo + draw(st.floats(0.1, 5.0))))
    return space


@given(space=config_spaces(), seed=st.integers(0, 9999))
@FAST
def test_config_space_sample_validates(space, seed):
    config = space.sample(seed)
    space.validate(config)


@given(space=config_spaces(), seed=st.integers(0, 9999))
@FAST
def test_config_space_perturb_stays_valid(space, seed):
    rng = np.random.default_rng(seed)
    config = space.sample(rng)
    for _ in range(5):
        config = space.perturb(config, rng)
        space.validate(config)


@given(space=config_spaces(), seed=st.integers(0, 9999))
@FAST
def test_config_space_encoding_in_unit_interval(space, seed):
    vec = space.encode(space.sample(seed))
    active = vec[vec >= 0]
    assert np.all(active <= 1.0 + 1e-9)


@given(
    seconds=st.floats(0.0, 1e4),
    cores=st.integers(1, 28),
)
@FAST
def test_machine_energy_nonnegative_and_monotone(seconds, cores):
    e = XEON_GOLD_6132.energy_kwh(seconds, cores)
    assert e >= 0.0
    assert XEON_GOLD_6132.energy_kwh(seconds, cores) <= (
        XEON_GOLD_6132.energy_kwh(seconds, 28) + 1e-12
    )


@given(
    exec_a=st.floats(1e-8, 1e-1),
    inf_a=st.floats(1e-15, 1e-8),
    exec_b=st.floats(1e-8, 1e-1),
    inf_b=st.floats(1e-15, 1e-8),
)
@FAST
def test_crossover_is_an_equality_point(exec_a, inf_a, exec_b, inf_b):
    a = SystemEnergyProfile("a", exec_a, inf_a)
    b = SystemEnergyProfile("b", exec_b, inf_b)
    n = crossover_point(a, b)
    if n is not None:
        assert np.isclose(a.total_kwh(n), b.total_kwh(n), rtol=1e-6)


@given(
    n=st.integers(10, 200),
    k=st.integers(2, 5),
    seed=st.integers(0, 999),
)
@FAST
def test_stratified_subset_preserves_all_classes(n, k, seed):
    from repro.hpo import stratified_subset

    rng = np.random.default_rng(seed)
    y = rng.integers(0, k, size=n)
    for c in range(k):
        if not np.any(y == c):
            y[c] = c   # ensure presence
    idx = stratified_subset(y, max(2 * k, n // 3), random_state=seed)
    assert set(np.unique(y[idx])) == set(np.unique(y))


@given(
    values=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30),
)
@FAST
def test_caruana_weights_always_normalised(values):
    """Caruana weights sum to 1 for any library of (dummy) models."""
    from repro.ensemble import CaruanaEnsemble
    from repro.models import DummyClassifier

    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.array([0, 1] * 10)
    models = [
        DummyClassifier(strategy="prior").fit(X, y)
        for _ in range(min(len(values), 4))
    ]
    ens = CaruanaEnsemble(max_rounds=5, sorted_init=2).fit(models, X, y)
    assert np.isclose(ens.weights_.sum(), 1.0)


@given(
    depth=st.integers(1, 8),
    seed=st.integers(0, 99),
)
@FAST
def test_tree_probabilities_always_valid(depth, seed):
    from repro.models import DecisionTreeClassifier

    X, y = make_classification(80, 5, 3, random_state=seed)
    tree = DecisionTreeClassifier(max_depth=depth, random_state=seed)
    proba = tree.fit(X, y).predict_proba(X)
    assert np.all(proba >= 0)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert tree.get_depth() <= depth

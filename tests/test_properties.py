"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.amortization import SystemEnergyProfile, crossover_point
from repro.datasets import make_classification
from repro.energy.machines import XEON_GOLD_6132
from repro.metrics import balanced_accuracy_score, confusion_matrix
from repro.pipeline import Categorical, ConfigSpace, Float, Integer

# keep hypothesis fast and deterministic in CI
FAST = settings(max_examples=30, deadline=None)


labels = st.lists(st.integers(0, 4), min_size=1, max_size=60)


@given(y=labels)
@FAST
def test_balanced_accuracy_perfect_prediction_is_one(y):
    assert balanced_accuracy_score(y, y) == 1.0


@given(y=labels, p=labels)
@FAST
def test_balanced_accuracy_bounded(y, p):
    p = (p * ((len(y) // len(p)) + 1))[: len(y)]
    score = balanced_accuracy_score(y, p)
    assert 0.0 <= score <= 1.0


@given(y=labels)
@FAST
def test_confusion_matrix_total_equals_samples(y):
    p = list(reversed(y))
    cm = confusion_matrix(y, p)
    assert cm.sum() == len(y)


@given(
    y=labels.filter(lambda v: len(set(v)) >= 2),
    shift=st.integers(1, 4),
)
@FAST
def test_balanced_accuracy_permutation_invariant(y, shift):
    """Relabelling classes consistently must not change the score."""
    y = np.asarray(y)
    p = np.roll(y, 1)
    score_a = balanced_accuracy_score(y, p)
    score_b = balanced_accuracy_score(y + 10 * shift, p + 10 * shift)
    assert np.isclose(score_a, score_b)


@given(
    n=st.integers(20, 80),
    d=st.integers(2, 8),
    k=st.integers(2, 4),
    seed=st.integers(0, 10_000),
)
@FAST
def test_make_classification_invariants(n, d, k, seed):
    X, y = make_classification(n, d, k, random_state=seed)
    assert X.shape == (n, d)
    assert np.isfinite(X).all()
    assert set(np.unique(y)) == set(range(k))
    counts = np.bincount(y, minlength=k)
    assert counts.min() >= 2


@st.composite
def config_spaces(draw):
    space = ConfigSpace()
    space.add(Categorical("c", tuple(
        draw(st.lists(st.text(min_size=1, max_size=3), min_size=2,
                      max_size=4, unique=True))
    )))
    lo = draw(st.integers(0, 10))
    hi = lo + draw(st.integers(1, 20))
    space.add(Integer("i", lo, hi))
    flo = draw(st.floats(0.001, 1.0))
    space.add(Float("f", flo, flo + draw(st.floats(0.1, 5.0))))
    return space


@given(space=config_spaces(), seed=st.integers(0, 9999))
@FAST
def test_config_space_sample_validates(space, seed):
    config = space.sample(seed)
    space.validate(config)


@given(space=config_spaces(), seed=st.integers(0, 9999))
@FAST
def test_config_space_perturb_stays_valid(space, seed):
    rng = np.random.default_rng(seed)
    config = space.sample(rng)
    for _ in range(5):
        config = space.perturb(config, rng)
        space.validate(config)


@given(space=config_spaces(), seed=st.integers(0, 9999))
@FAST
def test_config_space_encoding_in_unit_interval(space, seed):
    vec = space.encode(space.sample(seed))
    active = vec[vec >= 0]
    assert np.all(active <= 1.0 + 1e-9)


@given(
    seconds=st.floats(0.0, 1e4),
    cores=st.integers(1, 28),
)
@FAST
def test_machine_energy_nonnegative_and_monotone(seconds, cores):
    e = XEON_GOLD_6132.energy_kwh(seconds, cores)
    assert e >= 0.0
    assert XEON_GOLD_6132.energy_kwh(seconds, cores) <= (
        XEON_GOLD_6132.energy_kwh(seconds, 28) + 1e-12
    )


@given(
    exec_a=st.floats(1e-8, 1e-1),
    inf_a=st.floats(1e-15, 1e-8),
    exec_b=st.floats(1e-8, 1e-1),
    inf_b=st.floats(1e-15, 1e-8),
)
@FAST
def test_crossover_is_an_equality_point(exec_a, inf_a, exec_b, inf_b):
    a = SystemEnergyProfile("a", exec_a, inf_a)
    b = SystemEnergyProfile("b", exec_b, inf_b)
    n = crossover_point(a, b)
    if n is not None:
        assert np.isclose(a.total_kwh(n), b.total_kwh(n), rtol=1e-6)


@given(
    n=st.integers(10, 200),
    k=st.integers(2, 5),
    seed=st.integers(0, 999),
)
@FAST
def test_stratified_subset_preserves_all_classes(n, k, seed):
    from repro.hpo import stratified_subset

    rng = np.random.default_rng(seed)
    y = rng.integers(0, k, size=n)
    for c in range(k):
        if not np.any(y == c):
            y[c] = c   # ensure presence
    idx = stratified_subset(y, max(2 * k, n // 3), random_state=seed)
    assert set(np.unique(y[idx])) == set(np.unique(y))


@given(
    values=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30),
)
@FAST
def test_caruana_weights_always_normalised(values):
    """Caruana weights sum to 1 for any library of (dummy) models."""
    from repro.ensemble import CaruanaEnsemble
    from repro.models import DummyClassifier

    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.array([0, 1] * 10)
    models = [
        DummyClassifier(strategy="prior").fit(X, y)
        for _ in range(min(len(values), 4))
    ]
    ens = CaruanaEnsemble(max_rounds=5, sorted_init=2).fit(models, X, y)
    assert np.isclose(ens.weights_.sum(), 1.0)


@given(
    depth=st.integers(1, 8),
    seed=st.integers(0, 99),
)
@FAST
def test_tree_probabilities_always_valid(depth, seed):
    from repro.models import DecisionTreeClassifier

    X, y = make_classification(80, 5, 3, random_state=seed)
    tree = DecisionTreeClassifier(max_depth=depth, random_state=seed)
    proba = tree.fit(X, y).predict_proba(X)
    assert np.all(proba >= 0)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert tree.get_depth() <= depth


# --------------------------------------------------------------------------- #
# observability: span trees, metrics merge, journal round-trip
# --------------------------------------------------------------------------- #
@st.composite
def _span_trees(draw):
    """Drive a tick-clocked Tracer through a random well-nested
    open/close sequence and return the drained roots."""
    from repro.observability import Tracer

    tracer = Tracer()

    def build(depth):
        span = tracer.open(draw(st.sampled_from(["fit", "trial", "score",
                                                 "refit"])))
        if depth < 3:
            for _ in range(draw(st.integers(0, 3))):
                build(depth + 1)
        tracer.close(span)

    for _ in range(draw(st.integers(1, 3))):
        build(0)
    return tracer.drain()


@given(roots=_span_trees())
@FAST
def test_span_trees_always_well_nested(roots):
    """Any open/close sequence the Tracer accepts yields valid trees:
    forward time, children inside the parent interval, monotone sibling
    starts — and child durations never exceed the parent's."""
    from repro.observability import iter_spans, validate_span_tree

    assert roots
    for root in roots:
        assert validate_span_tree(root) == []
        for span, _ in iter_spans(root):
            assert span["t1"] >= span["t0"]
            for child in span["children"]:
                assert span["t0"] <= child["t0"] <= child["t1"] <= span["t1"]
                assert (child["t1"] - child["t0"]) \
                    <= (span["t1"] - span["t0"])


@given(roots=_span_trees())
@FAST
def test_tick_clock_is_strictly_monotone(roots):
    """Every clock read in a tick-traced tree is unique and increasing
    in depth-first open order."""
    from repro.observability import iter_spans

    stamps = []
    for root in roots:
        for span, _ in iter_spans(root):
            stamps.append(span["t0"])
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)


_HIST_EDGES = (0.5, 2.0, 8.0)


@st.composite
def _metric_snapshots(draw):
    """A registry snapshot with integral values, so float addition in
    counter/histogram merges stays exact (associativity is then an
    algebraic property, not a rounding accident)."""
    from repro.observability import MetricsRegistry

    registry = MetricsRegistry()
    for name in draw(st.lists(st.sampled_from(["c.a", "c.b"]),
                              unique=True, max_size=2)):
        registry.counter(name).inc(float(draw(st.integers(0, 40))))
    for name in draw(st.lists(st.sampled_from(["g.a", "g.b"]),
                              unique=True, max_size=2)):
        registry.gauge(name).set(float(draw(st.integers(0, 40))))
    for name in draw(st.lists(st.sampled_from(["h.a"]),
                              unique=True, max_size=1)):
        hist = registry.histogram(name, _HIST_EDGES)
        for value in draw(st.lists(st.integers(0, 10), max_size=5)):
            hist.observe(float(value))
    return registry.snapshot()


@given(a=_metric_snapshots(), b=_metric_snapshots(),
       c=_metric_snapshots())
@FAST
def test_metrics_merge_associative_and_commutative(a, b, c):
    from repro.observability import merge_snapshots

    assert merge_snapshots(a, b) == merge_snapshots(b, a)
    assert merge_snapshots(merge_snapshots(a, b), c) \
        == merge_snapshots(a, merge_snapshots(b, c))
    assert merge_snapshots(a, {}) == merge_snapshots({}, a)


@given(a=_metric_snapshots(), b=_metric_snapshots())
@FAST
def test_metrics_snapshot_stable_under_merge_roundtrip(a, b):
    """snapshot(merge(a, b)) re-merged with the empty snapshot is a
    fixed point, and snapshots are JSON-stable (sorted keys, plain
    types)."""
    import json

    from repro.observability import merge_snapshots

    merged = merge_snapshots(a, b)
    assert merge_snapshots(merged, {}) == merged
    assert list(merged) == sorted(merged)
    assert json.loads(json.dumps(merged)) == merged


@given(roots=_span_trees(), index=st.integers(0, 50),
       attempt=st.integers(0, 3))
@FAST
def test_journal_roundtrips_spans_byte_identically(roots, index, attempt):
    """A spans record replayed through JournalState carries the exact
    trees that were appended (JSON round-trip is the identity here:
    span payloads are plain dicts of floats/strings)."""
    import tempfile
    from pathlib import Path

    from repro.runtime.journal import CampaignJournal

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "j.jsonl"
        with CampaignJournal(path, durable=False) as journal:
            journal.open_campaign(1)
            journal.record_spans(index, "k" * 8, attempt, roots)
        state = CampaignJournal.load(path)
    assert len(state.spans) == 1
    event = state.spans[0]
    assert event["index"] == index
    assert event["attempt"] == attempt
    assert event["spans"] == roots

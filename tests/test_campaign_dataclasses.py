"""Figure 5/6/7 and Table 3 dataclasses (render + derived metrics) without
running full campaigns."""

import numpy as np
import pytest

from repro.experiments.campaigns import Figure7, GpuComparisonRow, Table3
from repro.experiments.figures import (
    Figure5,
    Figure5Point,
    Figure6,
    Figure6Point,
)
from repro.experiments.results import ResultsStore, RunRecord


class TestFigure5:
    def _fig(self):
        points = []
        for cores, kwh in ((1, 1.0), (2, 1.5), (4, 2.0), (8, 2.7)):
            points.append(Figure5Point("CAML", cores, 60.0, 0.8, kwh * 1e-3))
        for cores, kwh in ((1, 3.0), (2, 2.0), (4, 1.5), (8, 1.2)):
            points.append(Figure5Point("AG", cores, 60.0, 0.85, kwh * 1e-3))
        return Figure5(points)

    def test_energy_ratio(self):
        fig = self._fig()
        assert fig.energy_ratio("CAML", 8) == pytest.approx(2.7)
        assert fig.energy_ratio("AG", 8) == pytest.approx(0.4)

    def test_pareto_core_count(self):
        fig = self._fig()
        assert fig.pareto_core_count("CAML") == 1
        assert fig.pareto_core_count("AG") == 8

    def test_render(self):
        assert "8-core/1-core" in self._fig().render()

    def test_missing_system_ratio_nan(self):
        assert np.isnan(self._fig().energy_ratio("nope", 8))


class TestFigure6:
    def _fig(self):
        return Figure6([
            Figure6Point("CAML", 30.0, 0.85, 1.0e-13),
            Figure6Point("CAML(inf<=1e-9s)", 30.0, 0.80, 3.0e-14),
            Figure6Point("AutoGluon", 30.0, 0.88, 1.0e-12),
            Figure6Point("AutoGluon(refit)", 30.0, 0.86, 2.0e-13),
        ])

    def test_saving(self):
        fig = self._fig()
        assert fig.saving_vs("CAML(inf<=1e-9s)", "CAML") == pytest.approx(0.7)
        assert fig.saving_vs("AutoGluon(refit)",
                             "AutoGluon") == pytest.approx(0.8)

    def test_accuracy_cost(self):
        fig = self._fig()
        assert fig.accuracy_cost(
            "CAML(inf<=1e-9s)", "CAML") == pytest.approx(0.05)

    def test_missing_label_nan(self):
        assert np.isnan(self._fig().saving_vs("x", "y"))

    def test_render(self):
        assert "inference-optimised" in self._fig().render()


class TestTable3:
    def test_render_contains_ratios(self):
        t3 = Table3([GpuComparisonRow("TabPFN", 1.37, 0.96, 0.13, 0.07)])
        text = t3.render()
        assert "TabPFN" in text
        assert "0.13" in text


class TestFigure7:
    def test_render_and_amortization(self):
        from repro.devtuning.tuner import TuningResult
        from repro.energy.tracker import EnergyReport

        energy = EnergyReport(
            kwh=2.0, duration_s=100.0, cpu_kwh=2.0, dram_kwh=0.0,
            gpu_kwh=0.0, machine="xeon-gold-6132",
        )
        result = TuningResult(
            search_budget_s=10.0, best_config={}, best_parameters=None,
            best_objective=0.5, trials=[], development_energy=energy,
            default_scores={}, mean_balanced_accuracy=0.8,
        )

        def _rec(kwh):
            return RunRecord(
                system="CAML", dataset="d", configured_seconds=10.0,
                seed=0, balanced_accuracy=0.8, execution_kwh=kwh,
                actual_seconds=10.0, inference_kwh_per_instance=1e-13,
                inference_seconds_per_instance=1e-6,
            )

        tuned = ResultsStore([_rec(0.001)])
        baseline = ResultsStore([_rec(0.003)])
        fig = Figure7({10.0: result}, tuned, baseline)
        assert fig.development_kwh(10.0) == 2.0
        # 2.0 kWh / 0.002 kWh-per-run saving = 1000 runs
        assert fig.amortization_runs(10.0) == pytest.approx(1000.0)
        assert "development" in fig.render()

"""Ensemble distillation (Sec 5 / ref [17])."""

import numpy as np
import pytest

from repro.ensemble import StackingEnsemble, distill, distillation_report
from repro.models import DecisionTreeClassifier, GaussianNB, LogisticRegression


@pytest.fixture(scope="module")
def teacher_and_data():
    from repro.datasets import make_classification
    from repro.metrics import train_test_split

    X, y = make_classification(400, 8, 3, class_sep=1.5, nonlinearity=0.3,
                               random_state=0)
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3,
                                              random_state=1)
    teacher = StackingEnsemble(
        [
            ("tree", DecisionTreeClassifier(max_depth=6, random_state=0)),
            ("nb", GaussianNB()),
            ("lr", LogisticRegression()),
        ],
        n_folds=3, random_state=0,
    ).fit(X_tr, y_tr)
    return teacher, X_tr, X_te, y_tr, y_te


class TestDistill:
    def test_tree_student_agrees_with_teacher(self, teacher_and_data):
        teacher, X_tr, X_te, _, _ = teacher_and_data
        student = distill(teacher, X_tr, random_state=0)
        agreement = np.mean(teacher.predict(X_te) == student.predict(X_te))
        assert agreement > 0.75

    def test_student_cuts_inference_energy(self, teacher_and_data):
        """The point of distillation: one small model replaces the stack."""
        teacher, X_tr, X_te, _, y_te = teacher_and_data
        student = distill(teacher, X_tr, random_state=0)
        report = distillation_report(teacher, student, X_te, y_te)
        assert report["energy_reduction"] > 0.5
        assert report["student_kwh_per_instance"] < (
            report["teacher_kwh_per_instance"]
        )

    def test_student_accuracy_close_to_teacher(self, teacher_and_data):
        teacher, X_tr, X_te, _, y_te = teacher_and_data
        student = distill(teacher, X_tr, random_state=0)
        report = distillation_report(teacher, student, X_te, y_te)
        assert report["student_accuracy"] >= report["teacher_accuracy"] - 0.1

    def test_mlp_student(self, teacher_and_data):
        teacher, X_tr, X_te, _, _ = teacher_and_data
        student = distill(teacher, X_tr, student="mlp", random_state=0)
        assert student.predict(X_te).shape == (len(X_te),)

    def test_unknown_student(self, teacher_and_data):
        teacher, X_tr, *_ = teacher_and_data
        with pytest.raises(ValueError):
            distill(teacher, X_tr, student="gbdt")

    def test_proba_normalised(self, teacher_and_data):
        teacher, X_tr, X_te, _, _ = teacher_and_data
        student = distill(teacher, X_tr, random_state=0)
        proba = student.predict_proba(X_te)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba.min() >= 0

    def test_no_augmentation(self, teacher_and_data):
        teacher, X_tr, X_te, _, _ = teacher_and_data
        student = distill(teacher, X_tr, augment_factor=0.0, random_state=0)
        assert student.predict(X_te).shape == (len(X_te),)

    def test_deterministic(self, teacher_and_data):
        teacher, X_tr, X_te, _, _ = teacher_and_data
        a = distill(teacher, X_tr, random_state=5).predict(X_te)
        b = distill(teacher, X_tr, random_state=5).predict(X_te)
        assert np.array_equal(a, b)

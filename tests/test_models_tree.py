import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.metrics import balanced_accuracy_score
from repro.models import DecisionTreeClassifier, DecisionTreeRegressor


class TestClassifier:
    def test_fits_separable_data(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        tree = DecisionTreeClassifier(random_state=0).fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, tree.predict(X_te)) > 0.75

    def test_perfect_on_training_without_depth_limit(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.score(X, y) == pytest.approx(1.0)

    def test_max_depth_respected(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        assert tree.get_depth() <= 3

    def test_min_samples_leaf(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(min_samples_leaf=30,
                                      random_state=0).fit(X, y)
        leaves = tree.tree_.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 30

    def test_max_leaf_nodes(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(max_leaf_nodes=4,
                                      random_state=0).fit(X, y)
        assert tree.get_n_leaves() <= 4

    def test_proba_rows_sum_to_one(self, split_multiclass):
        X_tr, X_te, y_tr, _ = split_multiclass
        tree = DecisionTreeClassifier(max_depth=4, random_state=0)
        proba = tree.fit(X_tr, y_tr).predict_proba(X_te)
        assert proba.shape == (len(X_te), 4)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predictions_are_known_classes(self, split_multiclass):
        X_tr, X_te, y_tr, _ = split_multiclass
        tree = DecisionTreeClassifier(max_depth=4, random_state=0)
        preds = tree.fit(X_tr, y_tr).predict(X_te)
        assert set(preds).issubset(set(np.unique(y_tr)))

    def test_string_labels_supported(self):
        X = np.array([[0.0], [1.0], [0.1], [0.9]])
        y = np.array(["cat", "dog", "cat", "dog"])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert set(tree.predict(X)) == {"cat", "dog"}

    def test_entropy_criterion(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        tree = DecisionTreeClassifier(criterion="entropy",
                                      random_state=0).fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, tree.predict(X_te)) > 0.75

    def test_random_splitter_works(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        tree = DecisionTreeClassifier(splitter="random",
                                      random_state=0).fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, tree.predict(X_te)) > 0.6

    def test_max_features_sqrt(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(max_features="sqrt",
                                      random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.8

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.get_n_leaves() == 1

    def test_single_class(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert np.all(tree.predict(X) == 0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict_proba(np.zeros((2, 2)))

    def test_inference_flops_scale_with_samples(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        assert tree.inference_flops(200) == 2 * tree.inference_flops(100)

    def test_deterministic_given_seed(self, binary_data):
        X, y = binary_data
        p1 = DecisionTreeClassifier(max_features="sqrt",
                                    random_state=3).fit(X, y).predict(X)
        p2 = DecisionTreeClassifier(max_features="sqrt",
                                    random_state=3).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)


class TestRegressor:
    def _data(self, rng):
        X = rng.uniform(-2, 2, (300, 2))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        return X, y

    def test_fits_smooth_function(self, rng):
        X, y = self._data(rng)
        reg = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert reg.score(X, y) > 0.9

    def test_depth_limits_fit(self, rng):
        X, y = self._data(rng)
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y).score(X, y)
        deep = DecisionTreeRegressor(max_depth=10).fit(X, y).score(X, y)
        assert deep > shallow

    def test_constant_target(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = np.full(10, 3.0)
        reg = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(reg.predict(X), 3.0)

    def test_predict_shape(self, rng):
        X, y = self._data(rng)
        reg = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert reg.predict(X[:7]).shape == (7,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 1)), np.zeros(4))

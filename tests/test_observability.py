"""The observability layer: tracer, metrics registry, reports, and the
end-to-end contracts — spans journalled per cell, queue-wait histogram
populated under a pool, and the non-negotiable one: tracing never
changes campaign results (bit-identity across worker counts and across
tracing on/off).
"""

import json
from dataclasses import asdict

import pytest

from repro.experiments import ExperimentConfig, run_grid
from repro.observability import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    install_tracer,
    iter_spans,
    merge_snapshots,
    phase_rollup,
    profile_rows,
    render_span_tree,
    self_seconds,
    trace_span,
    uninstall_tracer,
    validate_span_tree,
)

MINI = ExperimentConfig(
    systems=("TabPFN", "CAML"),
    datasets=("credit-g",),
    budgets=(10.0,),
    n_runs=1,
    time_scale=0.004,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


# --------------------------------------------------------------------------- #
# tracer unit behaviour
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_hooks_are_noops_without_tracer(self):
        assert get_tracer() is None
        with trace_span("anything", key="value") as span:
            assert span is None

    def test_tick_clock_spans_are_deterministic(self):
        def run_once():
            tracer = install_tracer(Tracer())
            with trace_span("outer", system="X"):
                with trace_span("inner"):
                    pass
                with trace_span("inner"):
                    pass
            roots = tracer.drain()
            uninstall_tracer()
            return roots

        assert run_once() == run_once()

    def test_nesting_and_attrs(self):
        tracer = install_tracer(Tracer())
        with trace_span("outer") as outer:
            with trace_span("inner", digest="abc") as inner:
                assert inner["attrs"]["digest"] == "abc"
        (root,) = tracer.drain()
        assert root is outer
        assert root["children"] == [inner]
        assert validate_span_tree(root) == []

    def test_close_rejects_non_innermost(self):
        tracer = Tracer()
        outer = tracer.open("outer")
        tracer.open("inner")
        with pytest.raises(ValueError):
            tracer.close(outer)

    def test_drain_closes_dangling_spans(self):
        tracer = install_tracer(Tracer())
        with pytest.raises(RuntimeError):
            with trace_span("outer"):
                tracer.open("leaked")   # never closed: exception path
                raise RuntimeError("boom")
        roots = tracer.drain()
        assert len(roots) == 1
        assert validate_span_tree(roots[0]) == []

    def test_wall_clock_tracer_tags_domain(self):
        fake = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(fake)))
        with tracer.span("timed"):
            pass
        (root,) = tracer.drain()
        assert root["clock"] == "wall"
        assert root["t1"] > root["t0"]


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7.5)
        hist = registry.histogram("h", (1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(99.0)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["g"] == {"type": "gauge", "value": 7.5}
        assert snap["h"]["counts"] == [1, 1, 1]
        assert snap["h"]["count"] == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_drain_prevents_double_counting(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        first = registry.drain()
        second = registry.drain()
        assert first["c"]["value"] == 2.0
        assert second == {}

    def test_merge_adds_counters_and_maxes_gauges(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(4)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["c"]["value"] == 5.0
        assert merged["g"]["value"] == 5.0

    def test_histogram_edge_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots(a.snapshot(), b.snapshot())


# --------------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------------- #
def _demo_tree():
    tracer = install_tracer(Tracer())
    with trace_span("cell", system="CAML", dataset="credit-g"):
        with trace_span("fit"):
            with trace_span("trial", charged=2.0):
                pass
            with trace_span("trial", charged=1.0):
                pass
        with trace_span("score"):
            pass
    (root,) = tracer.drain()
    uninstall_tracer()
    return root


class TestReports:
    def test_self_seconds_subtracts_same_clock_children(self):
        root = _demo_tree()
        for span, _ in iter_spans(root):
            assert self_seconds(span) >= 0.0

    def test_render_names_every_span(self):
        text = render_span_tree(_demo_tree())
        for name in ("cell", "fit", "trial", "score"):
            assert name in text
        assert "system=CAML" in text

    def test_phase_rollup_prefers_charged_shares(self):
        rows = phase_rollup([_demo_tree()])
        by_phase = {r["phase"]: r for r in rows}
        # all the charged budget lives on the trials, so trial share = 1
        assert by_phase["trial"]["charged_s"] == pytest.approx(3.0)
        assert by_phase["trial"]["share"] == pytest.approx(1.0)
        assert by_phase["score"]["share"] == pytest.approx(0.0)

    def test_profile_rows_sorted_by_self_time(self):
        rows = profile_rows([_demo_tree()])
        self_times = [r["self_s"] for r in rows]
        assert self_times == sorted(self_times, reverse=True)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# end-to-end: spans through the executor and journal
# --------------------------------------------------------------------------- #
class TestTracedCampaign:
    def test_serial_trace_journals_spans_per_cell(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        telemetry = {}
        store = run_grid(
            MINI, journal_path=journal_path, trace=True,
            telemetry=telemetry,
        )
        events = [json.loads(line)
                  for line in journal_path.read_text().splitlines()]
        spans_events = [e for e in events if e["type"] == "spans"]
        executed = {e["index"] for e in events if e["type"] == "cell"}
        assert {e["index"] for e in spans_events} == executed
        assert len(store) == len(executed)
        for event in spans_events:
            for root in event["spans"]:
                assert validate_span_tree(root) == []
                names = [s["name"] for s, _ in iter_spans(root)]
                assert names[0] == "cell_lifecycle"
                assert "cell" in names      # worker tree nested inside
                assert "trial" in names or "fit" in names
        # the merged metrics snapshot is journalled too
        metrics_events = [e for e in events if e["type"] == "metrics"]
        assert len(metrics_events) == 1
        assert "cells.executed" in metrics_events[0]["snapshot"]
        assert telemetry["metrics"]["trials.evaluated"]["value"] > 0

    def test_untraced_journal_has_no_observability_records(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        run_grid(MINI, journal_path=journal_path)
        kinds = {json.loads(line)["type"]
                 for line in journal_path.read_text().splitlines()}
        assert "spans" not in kinds
        assert "metrics" not in kinds

    def test_pooled_trace_fills_queue_wait_histogram(self, tmp_path):
        telemetry = {}
        run_grid(
            MINI, workers=2, trace=True, telemetry=telemetry,
            journal_path=tmp_path / "j.jsonl",
        )
        hist = telemetry["metrics"]["executor.queue_wait_seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] > 0
        spans = telemetry["spans"]
        assert spans, "pooled traced run must report cell spans"
        for event in spans:
            root = event["spans"][0]
            child_names = [c["name"] for c in root["children"]]
            assert "queue_wait" in child_names
            assert "execute" in child_names

    def test_energy_span_tags_measurement_source(self):
        from repro.datasets import load_dataset
        from repro.energy.tracker import EnergyTracker
        from repro.experiments import run_single

        tracer = install_tracer(Tracer())
        run_single("TabPFN", load_dataset("credit-g"), 10.0,
                   seed=7, time_scale=0.004,
                   energy_meter=EnergyTracker())
        roots = tracer.drain()
        energy = [s for root in roots for s, _ in iter_spans(root)
                  if s["name"] == "energy"]
        assert len(energy) == 1
        assert energy[0]["attrs"]["source"] in ("measured", "estimated")
        assert energy[0]["attrs"]["kwh"] > 0


# --------------------------------------------------------------------------- #
# determinism matrix: tracing must never change results
# --------------------------------------------------------------------------- #
def _records_payload(store):
    return [asdict(r) for r in sorted(
        store.records,
        key=lambda r: (r.system, r.dataset, r.configured_seconds, r.seed),
    )]


class TestDeterminismMatrix:
    @pytest.fixture(scope="class")
    def reference(self):
        """Untraced serial baseline, one per seed."""
        out = {}
        for seed in (7, 19, 403):
            config = ExperimentConfig(
                systems=("TabPFN", "CAML"), datasets=("credit-g",),
                budgets=(10.0,), n_runs=1, time_scale=0.004,
                base_seed=seed,
            )
            out[seed] = _records_payload(run_grid(config))
        return out

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("seed", [7, 19, 403])
    def test_traced_run_matches_untraced_reference(
            self, reference, workers, seed):
        config = ExperimentConfig(
            systems=("TabPFN", "CAML"), datasets=("credit-g",),
            budgets=(10.0,), n_runs=1, time_scale=0.004,
            base_seed=seed,
        )
        traced = run_grid(config, workers=workers, trace=True)
        assert _records_payload(traced) == reference[seed]

    def test_traced_and_untraced_journals_agree_modulo_spans(
            self, tmp_path):
        paths = {name: tmp_path / f"{name}.jsonl"
                 for name in ("traced", "plain")}
        run_grid(MINI, journal_path=paths["traced"], trace=True)
        run_grid(MINI, journal_path=paths["plain"])

        def result_events(path):
            return [json.loads(line)
                    for line in path.read_text().splitlines()
                    if json.loads(line)["type"] not in ("spans", "metrics")]

        assert result_events(paths["traced"]) \
            == result_events(paths["plain"])

"""The evaluation store: records, write-through, queries, what-if.

The load-bearing pins live here:

* **what-if parity** — Caruana selection replayed over stored OOF
  predictions is bit-identical (weights and score) to a live
  :class:`CaruanaEnsemble` fit on the same pool;
* **layout invariance** — populating the store through any worker x
  shard layout yields byte-identical store digests and identical
  what-if answers;
* **corruption degrades** — a garbled entry is a warned miss, never a
  poisoned query.
"""

import json
import threading

import numpy as np
import pytest
from repro.datasets.loaders import load_dataset
from repro.ensemble.caruana import CaruanaEnsemble
from repro.evalstore import (
    EvalStore,
    TrialRecord,
    config_digest,
    ensemble_frontier,
    meta_database_from_store,
    mine_portfolio,
    pareto_front,
    performance_matrix,
    select_pool,
    trial_front,
    trial_points,
    trial_key,
    whatif_ensemble,
)
from repro.evalstore.capture import (
    TrialCapture,
    active_capture,
    install_capture,
    uninstall_capture,
)
from repro.evalstore.pareto import ParetoPoint
from repro.experiments import ExperimentConfig, run_grid
from repro.faults import KNOWN_SEAMS, SEAM_STORE_CORRUPT
from repro.pipeline.spaces import build_space
from repro.runtime.cells import CellSpec
from repro.systems.base import Deadline, PipelineEvaluator
from repro.utils import check_random_state

# ---------------------------------------------------------------------------
# synthetic record plumbing (no sklearn fits: pure store mechanics)
# ---------------------------------------------------------------------------

N_VAL = 10
Y_VAL = [0, 1] * (N_VAL // 2)


def make_trial(trial_index, *, val_score=0.7, kept=True, n_classes=2,
               seed=None):
    """One capture-shaped trial dict with deterministic OOF rows."""
    rng = np.random.default_rng(
        trial_index if seed is None else seed
    )
    proba = rng.random((N_VAL, n_classes))
    proba /= proba.sum(axis=1, keepdims=True)
    config = {"model": "stub", "depth": trial_index}
    return {
        "trial_index": trial_index,
        "config": config,
        "config_digest": config_digest(config),
        "val_score": float(val_score),
        "kept": bool(kept),
        "charged_s": 0.25,
        "n_train": 64,
        "classes": list(range(n_classes)),
        "y_val": list(Y_VAL),
        "oof": proba.tolist(),
    }


def make_spec(**overrides):
    base = dict(system="StubSys", dataset="stub-ds", budget_s=30.0,
                seed=0, time_scale=0.01)
    base.update(overrides)
    return CellSpec(**base)


def make_record(index, **overrides):
    trial = make_trial(index)
    spec = make_spec()
    fields = dict(
        cell_key="cell0", trial_index=index, system=spec.system,
        dataset=spec.dataset, budget_s=spec.budget_s, seed=spec.seed,
        time_scale=spec.time_scale, config=trial["config"],
        config_digest=trial["config_digest"],
        val_score=trial["val_score"], charged_s=trial["charged_s"],
        kept=trial["kept"], n_train=trial["n_train"],
        classes=trial["classes"], y_val=trial["y_val"],
        oof=trial["oof"],
    )
    fields.update(overrides)
    if "config" in overrides and "config_digest" not in overrides:
        fields["config_digest"] = config_digest(overrides["config"])
    return TrialRecord(**fields)


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------

class TestTrialRecord:
    def test_round_trip_is_lossless(self):
        record = make_record(3)
        assert TrialRecord.from_dict(record.as_dict()) == record
        reloaded = TrialRecord.from_dict(
            json.loads(record.canonical_json())
        )
        assert reloaded == record
        assert reloaded.oof == record.oof

    def test_key_is_versioned_and_stable(self):
        record = make_record(2)
        assert record.key == trial_key("cell0", 2)
        assert record.key != trial_key("cell0", 3)
        assert record.key != trial_key("cell1", 2)

    def test_config_digest_is_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) \
            == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_refit_joules_prices_paper_seconds(self):
        record = make_record(0)
        # charged_s / time_scale paper-seconds at single-core power
        from repro.energy.machines import DEFAULT_MACHINE
        expected = DEFAULT_MACHINE.power(1) * (0.25 / 0.01)
        assert record.refit_joules() == pytest.approx(expected)
        bad = make_record(0, time_scale=0.0)
        with pytest.raises(ValueError):
            bad.refit_joules()


# ---------------------------------------------------------------------------
# store mechanics
# ---------------------------------------------------------------------------

class TestEvalStore:
    def test_put_get_round_trip(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        record = make_record(0)
        assert store.put(record)
        assert store.get(record.key) == record
        assert store.stats.writes == 1
        assert store.stats.hits == 1
        assert len(store) == 1

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1

    def test_first_write_wins_dedup(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        record = make_record(0)
        assert store.put(record)
        assert not store.put(record)
        assert store.stats.dedup_hits == 1
        assert store.stats.dedup_conflicts == 0
        assert len(store) == 1

    def test_conflicting_rewrite_warns_and_keeps_original(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        record = make_record(0)
        store.put(record)
        imposter = make_record(0, val_score=0.99)
        assert imposter.key == record.key
        with pytest.warns(UserWarning, match="written twice"):
            assert not store.put(imposter)
        assert store.stats.dedup_conflicts == 1
        assert store.get(record.key).val_score == record.val_score

    def test_corrupt_entry_degrades_to_warned_miss(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        record = make_record(0)
        store.put(record)
        path = next((tmp_path / "store").glob("*/*.json"))
        path.write_text("{ not json")
        with pytest.warns(UserWarning, match="corrupt evaluation-store"):
            assert store.get(record.key) is None
        assert store.stats.corrupt == 1
        # queries never see the poisoned row
        with pytest.warns(UserWarning):
            assert store.records() == []

    def test_ingest_stamps_cell_identity(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        spec = make_spec(system="AutoSklearn1", dataset="credit-g",
                         seed=3)
        trials = [make_trial(i) for i in range(3)]
        assert store.ingest(spec, "cellkey0", trials) == 3
        records = store.records()
        assert [r.trial_index for r in records] == [0, 1, 2]
        assert all(r.system == "AutoSklearn1" for r in records)
        assert all(r.dataset == "credit-g" for r in records)
        assert all(r.seed == 3 for r in records)
        assert all(r.cell_key == "cellkey0" for r in records)
        # re-ingesting the same committed cell is a no-op
        assert store.ingest(spec, "cellkey0", trials) == 0

    def test_query_filters(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        store.ingest(make_spec(dataset="credit-g"), "cellA",
                     [make_trial(0), make_trial(1, kept=False)])
        store.ingest(make_spec(dataset="kc1", seed=7), "cellB",
                     [make_trial(0)])
        assert len(store.query()) == 3
        assert len(store.query(dataset="credit-g")) == 2
        assert len(store.query(dataset="credit-g", kept_only=True)) == 1
        assert len(store.query(seed=7)) == 1
        assert store.query(system="NoSuchSystem") == []
        assert len(store.query(budget_s=30.0)) == 3

    def test_digest_is_insertion_order_invariant(self, tmp_path):
        trials = [make_trial(i) for i in range(4)]
        forward = EvalStore(tmp_path / "fwd")
        backward = EvalStore(tmp_path / "bwd")
        spec = make_spec()
        forward.ingest(spec, "cell0", trials)
        backward.ingest(spec, "cell0", list(reversed(trials)))
        assert forward.digest() == backward.digest()

    def test_merge_from_is_first_write_wins(self, tmp_path):
        left = EvalStore(tmp_path / "left")
        right = EvalStore(tmp_path / "right")
        spec = make_spec()
        left.ingest(spec, "cellA", [make_trial(0), make_trial(1)])
        right.ingest(spec, "cellA", [make_trial(1), make_trial(2)])
        counts = left.merge_from(right)
        assert counts == {"written": 1, "dedup": 1}
        assert len(left) == 3
        # merging the other way round lands on the same content
        fresh = EvalStore(tmp_path / "fresh")
        fresh.merge_from(right)
        fresh.merge_from(left)
        assert fresh.digest() == left.digest()

    def test_clear_empties_the_store(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        store.ingest(make_spec(), "cell0", [make_trial(0)])
        store.clear()
        assert len(store) == 0
        assert store.records() == []


# ---------------------------------------------------------------------------
# fault seam: store corruption degrades, never poisons
# ---------------------------------------------------------------------------

class TestStoreCorruptSeam:
    def test_seam_is_registered(self):
        assert SEAM_STORE_CORRUPT == "store_corrupt"
        assert SEAM_STORE_CORRUPT in KNOWN_SEAMS

    def test_injected_corruption_is_a_warned_miss(self, tmp_path):
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.uniform(0, [SEAM_STORE_CORRUPT], rate=1.0)
        store = EvalStore(tmp_path / "store",
                          fault_injector=FaultInjector(plan))
        record = make_record(0)
        store.put(record)
        with pytest.warns(UserWarning, match="corrupt evaluation-store"):
            assert store.get(record.key) is None
        assert store.stats.corrupt == 1
        # queries over the surviving store still answer
        with pytest.warns(UserWarning):
            assert store.records() == []


# ---------------------------------------------------------------------------
# capture slot
# ---------------------------------------------------------------------------

class TestTrialCapture:
    def test_install_drain_uninstall(self):
        assert active_capture() is None
        cap = install_capture()
        try:
            assert active_capture() is cap
            cap.record(config={"a": 1}, val_score=0.5, kept=True,
                       charged_s=0.1, n_train=10, classes=[0, 1],
                       y_val=np.array([0, 1]),
                       oof=np.array([[0.6, 0.4], [0.3, 0.7]]))
        finally:
            uninstall_capture()
        assert active_capture() is None
        trials = cap.drain()
        assert len(trials) == 1
        assert trials[0]["trial_index"] == 0
        assert trials[0]["oof"] == [[0.6, 0.4], [0.3, 0.7]]
        assert cap.drain() == []

    def test_slot_is_thread_local(self):
        """Two threads install their own captures; neither sees the
        other's trials — the property the sharded coordinator's
        in-thread cells depend on."""
        seen = {}

        def worker(name):
            cap = install_capture()
            try:
                cap.record(config={"who": name}, val_score=0.5,
                           kept=True, charged_s=0.1, n_train=1,
                           classes=[0, 1], y_val=[0],
                           oof=[[0.5, 0.5]])
            finally:
                uninstall_capture()
            seen[name] = cap.drain()

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("left", "right")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [t["config"]["who"] for t in seen["left"]] == ["left"]
        assert [t["config"]["who"] for t in seen["right"]] == ["right"]


# ---------------------------------------------------------------------------
# live capture + what-if parity (the tentpole pin)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def captured_campaign(tmp_path_factory):
    """Eight scored trials on credit-g, captured into a store, with the
    evaluator kept alive for live-ensemble comparison."""
    ds = load_dataset("credit-g")
    deadline = Deadline(600.0)
    evaluator = PipelineEvaluator(
        ds.X_train, ds.y_train, deadline=deadline,
        random_state=check_random_state(7),
    )
    space = build_space()
    capture = install_capture()
    try:
        for i in range(8):
            evaluator.evaluate_config(
                space.sample(check_random_state(i)), deadline=deadline,
            )
    finally:
        uninstall_capture()
    store = EvalStore(tmp_path_factory.mktemp("evalstore"))
    spec = make_spec(system="AutoSklearn1", dataset="credit-g")
    store.ingest(spec, "livecell", capture.drain())
    return evaluator, store


class TestCaptureWriteThrough:
    def test_capture_mirrors_evaluator_results(self, captured_campaign):
        evaluator, store = captured_campaign
        records = store.records()
        assert len(records) == 8
        live_scores = [score for score, _ in evaluator.models]
        assert [r.val_score for r in records] == live_scores
        _, X_val, _, y_val = evaluator._split()
        assert all(r.y_val == y_val.tolist() for r in records)
        assert all(np.asarray(r.oof).shape == (len(y_val), 2)
                   for r in records)

    def test_uncaptured_evaluation_is_bit_identical(self):
        """The capture hook must not perturb the evaluation itself:
        same seeds with and without a capture installed give the same
        scores and budget charge."""
        ds = load_dataset("kc1")

        def run(with_capture):
            deadline = Deadline(200.0)
            evaluator = PipelineEvaluator(
                ds.X_train, ds.y_train, deadline=deadline,
                random_state=check_random_state(11),
            )
            space = build_space()
            if with_capture:
                install_capture()
            try:
                scores = [
                    evaluator.evaluate_config(
                        space.sample(check_random_state(i)),
                        deadline=deadline,
                    )[0]
                    for i in range(4)
                ]
            finally:
                if with_capture:
                    uninstall_capture()
            return scores, deadline.left()

        assert run(True) == run(False)


class TestWhatIfParity:
    def test_whatif_matches_live_caruana_bit_for_bit(
            self, captured_campaign):
        """The acceptance pin: replayed selection over stored OOF rows
        reproduces the live ensemble's weights and validation score
        exactly — zero refits."""
        evaluator, store = captured_campaign
        _, X_val, _, y_val = evaluator._split()
        live = CaruanaEnsemble(max_rounds=50)
        live.fit(evaluator.top_models(5), X_val, y_val)

        replayed = whatif_ensemble(store.records(), top_k=5,
                                   max_rounds=50)
        assert replayed.val_score == live.val_score_
        assert np.array_equal(np.asarray(replayed.weights),
                              np.asarray(live.weights_))
        assert replayed.pool_size == 5
        assert replayed.n_members == len(
            [w for w in live.weights_ if w > 0]
        )

    def test_whatif_energy_ledger(self, captured_campaign):
        _, store = captured_campaign
        result = whatif_ensemble(store.records(), top_k=5)
        assert result.whatif_joules > 0
        assert result.refit_joules > result.whatif_joules
        assert result.joules_ratio > 1
        payload = result.as_dict()
        assert payload["joules_ratio"] == result.joules_ratio
        assert payload["n_members"] == result.n_members


class TestWhatIfValidation:
    def test_select_pool_mirrors_top_models(self):
        records = [
            make_record(0, val_score=0.6),
            make_record(1, val_score=0.9, kept=False),
            make_record(2, val_score=0.8),
            make_record(3, val_score=0.8),
        ]
        pool = select_pool(records, top_k=2)
        # kept only, score-descending, stable on ties
        assert [r.trial_index for r in pool] == [2, 3]
        with pytest.raises(ValueError):
            select_pool(records, top_k=0)

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError, match="no kept trials"):
            whatif_ensemble([])
        with pytest.raises(ValueError, match="no kept trials"):
            whatif_ensemble([make_record(0, kept=False)])

    def test_mixed_validation_splits_are_refused(self):
        flipped = [1 - y for y in Y_VAL]
        records = [make_record(0),
                   make_record(1, y_val=flipped)]
        with pytest.raises(ValueError, match="different validation"):
            whatif_ensemble(records)


# ---------------------------------------------------------------------------
# mining + pareto queries
# ---------------------------------------------------------------------------

class TestMining:
    def test_performance_matrix_shape_and_missing(self):
        records = [
            make_record(0, dataset="credit-g", val_score=0.7),
            make_record(1, dataset="credit-g", val_score=0.8),
            make_record(0, dataset="kc1", cell_key="cell1",
                        val_score=0.6),
        ]
        datasets, digests, configs, matrix = performance_matrix(records)
        assert datasets == ["credit-g", "kc1"]
        assert matrix.shape == (2, 2)
        assert len(configs) == len(digests) == 2
        # trial 1's config never ran on kc1 -> failure floor
        assert (matrix == -1.0).sum() == 1
        assert matrix.max() == 0.8

    def test_mine_portfolio_is_order_invariant(self):
        records = [make_record(i, val_score=0.5 + 0.1 * i)
                   for i in range(4)]
        mined = mine_portfolio(records, size=2)
        reversed_mined = mine_portfolio(list(reversed(records)), size=2)
        assert mined.configs == reversed_mined.configs
        assert len(mined.configs) <= 2
        assert mine_portfolio([], size=2).configs == []

    def test_meta_database_from_store(self):
        records = [
            make_record(i, dataset="credit-g", val_score=0.5 + 0.1 * i)
            for i in range(3)
        ]
        db = meta_database_from_store(records, top_k=2)
        assert [e.dataset for e in db.entries] == ["credit-g"]
        entry = db.entries[0]
        assert entry.best_scores == sorted(entry.best_scores,
                                           reverse=True)
        assert len(entry.best_configs) == 2


class TestPareto:
    def test_front_is_nondominated_and_order_invariant(self):
        points = [
            ParetoPoint(joules=1.0, score=0.6, label="a"),
            ParetoPoint(joules=2.0, score=0.5, label="dominated"),
            ParetoPoint(joules=2.0, score=0.8, label="b"),
            ParetoPoint(joules=3.0, score=0.8, label="tie-worse"),
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["a", "b"]
        assert pareto_front(list(reversed(points))) == front

    def test_trial_points_keep_best_per_config(self):
        records = [
            make_record(0, val_score=0.6),
            make_record(1, cell_key="cell1", trial_index=0,
                        config={"model": "stub", "depth": 0},
                        val_score=0.9),
        ]
        points = trial_points(records)
        assert len(points) == 1
        assert points[0].score == 0.9
        assert len(trial_front(records)) == 1

    def test_ensemble_frontier_rows(self, captured_campaign):
        _, store = captured_campaign
        rows = ensemble_frontier(store.records(), max_size=4)
        assert [row["pool_size"] for row in rows] == [1, 2, 3, 4]
        assert all(row["refit_joules"] > row["whatif_joules"]
                   for row in rows)
        # more candidates never hurt the replayed validation score
        scores = [row["val_score"] for row in rows]
        assert scores == sorted(scores) or max(scores) == scores[-1]


# ---------------------------------------------------------------------------
# CLI surface: repro store / whatif / pareto
# ---------------------------------------------------------------------------

class TestCLI:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        store = EvalStore(tmp_path / "store")
        spec = make_spec(system="AutoSklearn1", dataset="credit-g")
        store.ingest(spec, "cellA",
                     [make_trial(i, val_score=0.6 + 0.05 * i)
                      for i in range(4)])
        return str(tmp_path / "store")

    def test_store_stats(self, store_dir, capsys):
        from repro.cli import main

        assert main(["store", "stats", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "trial records" in out and "store digest" in out

    def test_store_query_json(self, store_dir, capsys):
        from repro.cli import main

        assert main(["store", "query", "--store", store_dir,
                     "--dataset", "credit-g", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert all(r["dataset"] == "credit-g" for r in payload)

    def test_store_portfolio(self, store_dir, capsys):
        from repro.cli import main

        assert main(["store", "portfolio", "--store", store_dir,
                     "--size", "2"]) == 0
        assert "portfolio" in capsys.readouterr().out

    def test_whatif_command(self, store_dir, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "whatif.json"
        assert main(["whatif", "--store", store_dir, "--top-k", "3",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "zero refits" in out
        assert "validation balanced accuracy" in out
        payload = json.loads(out_path.read_text())
        assert payload["pool_size"] == 3
        assert payload["joules_ratio"] > 1

    def test_pareto_command(self, store_dir, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "pareto.json"
        assert main(["pareto", "--store", store_dir, "--frontier",
                     "--max-size", "3", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "trial frontier" in out
        assert "ensemble-size frontier" in out
        payload = json.loads(out_path.read_text())
        assert payload["front"]
        assert [row["pool_size"]
                for row in payload["ensemble_frontier"]] == [1, 2, 3]

    def test_missing_store_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope")
        assert main(["store", "stats", "--store", missing]) == 2
        assert "no evaluation store" in capsys.readouterr().err
        assert main(["whatif", "--store", missing]) == 2
        assert main(["pareto", "--store", missing]) == 2

    def test_grid_wires_eval_store_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["grid", "--eval-store", "/tmp/x"]
        )
        assert args.eval_store == "/tmp/x"
        args = build_parser().parse_args(
            ["whatif", "--store", "/tmp/x", "--top-k", "9"]
        )
        assert args.top_k == 9
        assert args.func.__name__ == "_cmd_whatif"


# ---------------------------------------------------------------------------
# determinism matrix: worker x shard layouts agree byte-for-byte
# ---------------------------------------------------------------------------

MATRIX_CONFIG = ExperimentConfig(
    systems=("AutoSklearn1",),
    datasets=("credit-g",),
    budgets=(30.0,),
    n_runs=2,
    time_scale=0.005,
)


class TestDeterminismMatrix:
    def test_store_digest_is_layout_invariant(self, tmp_path):
        """Satellite pin: workers {1,4} x shards {1,3} all produce the
        byte-identical store digest, and the what-if answer replayed
        from any layout's store is identical."""
        digests = {}
        answers = {}
        for workers, shards in [(1, 1), (4, 1), (1, 3), (4, 3)]:
            store_dir = tmp_path / f"w{workers}s{shards}"
            run_grid(MATRIX_CONFIG, workers=workers, shards=shards,
                     eval_store_dir=store_dir)
            store = EvalStore(store_dir)
            digests[(workers, shards)] = store.digest()
            first_seed = min(r.seed for r in store.records())
            pool = store.query(kept_only=True, seed=first_seed)
            answers[(workers, shards)] = whatif_ensemble(
                pool, top_k=5
            ).as_dict()
        assert len(set(digests.values())) == 1, digests
        assert len({json.dumps(a, sort_keys=True)
                    for a in answers.values()}) == 1


# ---------------------------------------------------------------------------
# grid write-through + telemetry
# ---------------------------------------------------------------------------

class TestGridWriteThrough:
    def test_run_grid_populates_store_and_telemetry(self, tmp_path):
        telemetry = {}
        results = run_grid(MATRIX_CONFIG, eval_store_dir=tmp_path / "s",
                           telemetry=telemetry)
        store = EvalStore(tmp_path / "s")
        assert len(store) > 0
        assert telemetry["evalstore"]["writes"] == len(store)
        assert results.records  # the campaign itself is unaffected
        # every record's cell identity resolves back to the grid
        for record in store.records():
            assert record.system == "AutoSklearn1"
            assert record.dataset == "credit-g"
            # the runner's seed schedule: base_seed + 1009 * run
            assert record.seed in (7, 7 + 1009)

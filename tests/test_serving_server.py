"""Prediction server + SLO router: batching, budgets, deadlines,
routing policy, observability and fault seams."""

import numpy as np
import pytest

from repro.faults import (
    SEAM_REQUEST_TIMEOUT,
    FailureRecord,
    FaultInjector,
    FaultPlan,
    SeamSpec,
)
from repro.observability import MetricsRegistry, validate_span_tree
from repro.serving import (
    ROUTE_BUDGET_REJECT,
    ROUTE_SLO_FALLBACK,
    ROUTE_SLO_OK,
    BatchPolicy,
    MicroBatcher,
    PredictionRequest,
    PredictionServer,
    RequestBudget,
    SLORouter,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
)

from tests.serving_stubs import stub_variants


def req(i, t, rows=1, **budget):
    return PredictionRequest(
        request_id=i, arrival_s=float(t), n_rows=rows,
        budget=RequestBudget(**budget),
    )


def make_server(**kw):
    kw.setdefault("policy", BatchPolicy())
    router = SLORouter(stub_variants(),
                       target_j_per_pred=kw.pop("target", None))
    return PredictionServer(router, **kw)


class TestMicroBatcher:
    def test_fifo_order_and_caps(self):
        policy = BatchPolicy(max_batch_rows=10, max_batch_requests=3)
        batcher = MicroBatcher(policy)
        for i in range(5):
            batcher.add(req(i, t=i * 0.001, rows=4))
        batch = batcher.take()
        # 4+4=8 rows fit, a third request would exceed 10 rows
        assert [r.request_id for r in batch] == [0, 1]
        assert [r.request_id for r in batcher.take()] == [2, 3]
        assert [r.request_id for r in batcher.take()] == [4]
        assert batcher.take() == []

    def test_request_cap(self):
        policy = BatchPolicy(max_batch_rows=1000, max_batch_requests=2)
        batcher = MicroBatcher(policy)
        for i in range(3):
            batcher.add(req(i, t=0.0))
        assert len(batcher.take()) == 2
        assert len(batcher.take()) == 1

    def test_oversized_head_still_leaves(self):
        policy = BatchPolicy(max_batch_rows=4)
        batcher = MicroBatcher(policy)
        batcher.add(req(0, t=0.0, rows=9))
        assert [r.request_id for r in batcher.take()] == [0]

    def test_ready_full_or_waited(self):
        policy = BatchPolicy(max_batch_rows=8, max_wait_s=0.01)
        batcher = MicroBatcher(policy)
        batcher.add(req(0, t=1.0, rows=2))
        assert not batcher.ready(1.0)
        assert batcher.ready(1.01)            # wait window expired
        batcher.add(req(1, t=1.0, rows=6))
        assert batcher.ready(1.0)             # row cap reached
        assert batcher.flush_at() == pytest.approx(1.01)


class TestRouting:
    def test_most_accurate_without_target(self):
        router = SLORouter(stub_variants())
        decision = router.route(10)
        assert decision.variant == "ensemble"
        assert decision.reason == ROUTE_SLO_OK

    def test_tightened_target_switches_variant(self):
        variants = stub_variants()
        ensemble_j = variants["ensemble"].manifest.joules_per_prediction
        refit_j = variants["refit"].manifest.joules_per_prediction
        between = (ensemble_j + refit_j) / 2
        assert SLORouter(variants).route(1).variant == "ensemble"
        assert SLORouter(variants, target_j_per_pred=between) \
            .route(1).variant == "refit"

    def test_unmeetable_target_serves_cheapest_as_fallback(self):
        router = SLORouter(stub_variants(), target_j_per_pred=1e-30)
        decision = router.route(5)
        assert decision.variant == "distilled"
        assert decision.reason == ROUTE_SLO_FALLBACK

    def test_hard_joule_budget_rejects(self):
        router = SLORouter(stub_variants())
        decision = router.route(10, max_joules=1e-30)
        assert decision.variant is None
        assert decision.reason == ROUTE_BUDGET_REJECT
        assert not decision.accepted

    def test_observe_moves_the_estimate(self):
        router = SLORouter(stub_variants(), ewma_alpha=0.5)
        before = router.j_per_prediction("refit")
        router.observe("refit", 10, joules=before * 40)
        assert router.j_per_prediction("refit") > before

    def test_drop_variant_degrades_but_keeps_one(self):
        router = SLORouter(stub_variants())
        router.drop_variant("ensemble")
        assert router.route(1).variant == "refit"
        router.drop_variant("refit")
        router.drop_variant("distilled")   # refused: last one standing
        assert router.route(1).variant == "distilled"

    def test_snapshot_is_sorted(self):
        snap = SLORouter(stub_variants()).snapshot()
        assert list(snap["estimates"]) == sorted(snap["estimates"])
        assert list(snap["accuracy"]) == sorted(snap["accuracy"])


class TestServer:
    def test_one_response_per_request_in_id_order(self):
        server = make_server()
        requests = [req(i, t=0.001 * (i % 7), rows=1 + i % 3)
                    for i in range(50)]
        responses = server.process(requests)
        assert [r.request_id for r in responses] == list(range(50))
        assert all(r.status == STATUS_OK for r in responses)

    def test_row_cap_rejection_is_structured(self):
        server = make_server()
        responses = server.process([req(0, t=0.0, rows=5, max_rows=2)])
        only = responses[0]
        assert only.status == STATUS_REJECTED
        assert only.variant is None
        assert only.failure is not None
        assert only.failure.seam == "request_budget"
        assert FailureRecord.is_structured_note(only.failure.to_note())

    def test_server_batch_ceiling_rejects(self):
        server = make_server(policy=BatchPolicy(max_batch_rows=8))
        responses = server.process([req(0, t=0.0, rows=9)])
        assert responses[0].status == STATUS_REJECTED

    def test_joule_budget_rejection(self):
        server = make_server()
        responses = server.process(
            [req(0, t=0.0, rows=4, max_joules=1e-30)])
        assert responses[0].status == STATUS_REJECTED

    def test_deadline_exceeded_is_timeout(self):
        server = make_server()
        responses = server.process(
            [req(0, t=0.0, rows=1, deadline_s=1e-9)])
        only = responses[0]
        assert only.status == STATUS_TIMEOUT
        assert only.failure.seam == "request_deadline"
        assert only.latency_s > 1e-9

    def test_batching_coalesces_requests(self):
        server = make_server(n_slots=1)
        # 30 requests land inside one wait window -> far fewer batches
        responses = server.process([req(i, t=0.0) for i in range(30)])
        assert len(responses) == 30
        assert server.n_batches < 30

    def test_predictions_are_real(self):
        server = make_server()
        X = np.array([[1.0, 0.0], [-1.0, 0.0], [2.0, 0.0]])
        request = PredictionRequest(request_id=0, arrival_s=0.0,
                                    n_rows=3, X=X)
        responses = server.process([request])
        # StubModel labels x0 > 0 as its `label` (default 0)
        assert np.array_equal(responses[0].predictions,
                              np.array([0, 1, 0]))

    def test_split_batch_predictions_match_per_request_rows(self):
        server = make_server()
        reqs = []
        for i in range(4):
            X = np.full((i + 1, 2), float(i + 1))
            reqs.append(PredictionRequest(
                request_id=i, arrival_s=0.0, n_rows=i + 1, X=X))
        responses = server.process(reqs)
        for i, r in enumerate(responses):
            assert len(r.predictions) == i + 1

    def test_energy_accounting_positive_and_additive(self):
        server = make_server()
        responses = server.process(
            [req(i, t=0.0, rows=2) for i in range(10)])
        total = sum(r.joules for r in responses)
        assert total > 0
        counter = server.registry.counter("serving.joules")
        assert counter.value == pytest.approx(total)

    def test_metrics_cover_every_request(self):
        server = make_server()
        responses = server.process([
            req(0, t=0.0, rows=2),
            req(1, t=0.0, rows=9, max_rows=4),
            req(2, t=0.0, rows=1, deadline_s=1e-9),
        ])
        registry = server.registry
        assert registry.counter("serving.requests").value == 3
        assert registry.counter("serving.ok").value == 1
        assert registry.counter("serving.rejected").value == 1
        assert registry.counter("serving.timeout").value == 1
        assert len(responses) == 3

    def test_every_request_emits_a_valid_span_tree(self):
        server = make_server(span_sample_every=1)
        server.process([
            req(0, t=0.0, rows=2),
            req(1, t=0.0, rows=9, max_rows=4),   # rejected
        ])
        assert len(server.spans) == 2
        for root in server.spans:
            assert root["clock"] == "sim"
            assert validate_span_tree(root) == []
        served = next(s for s in server.spans
                      if s["attrs"]["status"] == STATUS_OK)
        assert [c["name"] for c in served["children"]] == \
            ["queue_wait", "batch", "predict", "energy"]

    def test_span_sampling_off_records_nothing(self):
        server = make_server(span_sample_every=0)
        server.process([req(0, t=0.0)])
        assert server.spans == []

    def test_injected_stall_is_flagged_and_answered(self):
        plan = FaultPlan(seed=1, seams={
            SEAM_REQUEST_TIMEOUT: SeamSpec(rate=1.0, delay_s=5.0),
        })
        server = make_server(fault_injector=FaultInjector(plan))
        responses = server.process(
            [req(0, t=0.0, rows=1, deadline_s=0.1)])
        only = responses[0]
        assert only.status == STATUS_TIMEOUT
        assert only.failure.injected
        assert only.failure.seam == SEAM_REQUEST_TIMEOUT
        assert only.latency_s > 5.0

    def test_fallback_routing_counts_as_slo_miss(self):
        server = make_server(target=1e-30)
        responses = server.process([req(0, t=0.0)])
        assert responses[0].status == STATUS_OK
        assert not responses[0].slo_ok

    def test_registry_is_shared_with_router(self):
        registry = MetricsRegistry()
        router = SLORouter(stub_variants(), registry=registry)
        server = PredictionServer(router, registry=registry)
        server.process([req(0, t=0.0)])
        assert registry.counter("router.pick.ensemble").value == 1

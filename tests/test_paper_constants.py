"""Cross-checks against numbers stated verbatim in the paper."""

import numpy as np
import pytest

from repro.analysis.guideline import (
    AMORTIZATION_RUNS,
    SMALL_BUDGET_S,
    TABPFN_MAX_CLASSES,
)
from repro.datasets.registry import DATASET_REGISTRY, DEV_POOL_SIZE, _TABLE2
from repro.energy.co2 import CO2_KG_PER_KWH, EUR_PER_KWH
from repro.energy.machines import XEON_GOLD_6132, XEON_T4_MACHINE
from repro.experiments.config import PAPER_BUDGETS, PAPER_SYSTEMS
from repro.models.pfn import MAX_CLASSES, META_TRAIN_MAX_ROWS
from repro.pipeline.spaces import ALL_CLASSIFIERS
from repro.systems import make_system


class TestPaperNumbers:
    def test_39_amlb_datasets(self):
        """Sec 3.1: 'We evaluate all systems on the 39 datasets'."""
        assert len(_TABLE2) == 39

    def test_dev_pool_124_datasets(self):
        """Sec 3.7: '124 binary classification datasets from OpenML'."""
        assert DEV_POOL_SIZE == 124

    def test_budgets_10s_30s_1m_5m(self):
        """Sec 3.2: 'search times 10s, 30s, 1min, and 5min'."""
        assert PAPER_BUDGETS == (10.0, 30.0, 60.0, 300.0)

    def test_seven_benchmarked_systems(self):
        assert len(PAPER_SYSTEMS) == 7

    def test_askl_search_space_15_models(self):
        """Sec 2.3: 'ASKL supports the search space of 15 models'."""
        assert len(ALL_CLASSIFIERS) == 15

    def test_tabpfn_10_class_limit(self):
        """Sec 3.2: 'the official implementation of TabPFN only supports up
        to 10 classes'."""
        assert MAX_CLASSES == TABPFN_MAX_CLASSES == 10

    def test_tabpfn_1k_row_domain(self):
        """Sec 3.2: '(mainly developed for datasets with up to 1k
        instances)'."""
        assert META_TRAIN_MAX_ROWS == 1000

    def test_amortization_885_runs(self):
        """Sec 3.7: 'amortizes when the tuned AutoML system has run 885
        times'."""
        assert AMORTIZATION_RUNS == 885

    def test_small_budget_threshold_10s(self):
        """Sec 3.9: 'for search budgets smaller than 10s'."""
        assert SMALL_BUDGET_S == 10.0

    def test_co2_and_price_constants(self):
        """Sec 3.6: 0.20 EUR/kWh (Eurostat) and 0.222 kg CO2/kWh
        (Germany)."""
        assert EUR_PER_KWH == 0.20
        assert CO2_KG_PER_KWH == 0.222

    def test_machine_shapes(self):
        """Sec 3.1: 28-core Xeon Gold 6132; 8-core Xeon + 1x T4."""
        assert XEON_GOLD_6132.n_cores == 28
        assert XEON_T4_MACHINE.n_cores == 8
        assert XEON_T4_MACHINE.gpu.name == "nvidia-t4"

    def test_caml_10_random_inits(self):
        """Sec 2.3: 'CAML first evaluates 10 random ML pipelines'."""
        assert make_system("CAML").n_init == 10

    def test_askl_min_budget_30s_tpot_1min(self):
        """Sec 3.2: ASKL benchmarked from 30s, TPOT from 1min."""
        assert make_system("AutoSklearn1").min_budget_s == 30.0
        assert make_system("AutoSklearn2").min_budget_s == 30.0
        assert make_system("TPOT").min_budget_s == 60.0

    def test_askl_caruana_50_rounds(self):
        """Sec 2.2: ensembling 'the top 50 ML pipelines' (50 greedy
        rounds)."""
        assert make_system("AutoSklearn1").ensemble_size == 50


class TestTable2Verbatim:
    @pytest.mark.parametrize("name,oml_id,rows,feats,classes", [
        ("robert", 41165, 10000, 7200, 10),
        ("Fashion-MNIST", 40996, 70000, 784, 10),
        ("dionis", 41167, 416188, 60, 355),
        ("helena", 41169, 65196, 27, 100),
        ("airlines", 1169, 539383, 7, 2),
        ("blood-transfusion-service-center", 1464, 748, 4, 2),
    ])
    def test_rows(self, name, oml_id, rows, feats, classes):
        spec = DATASET_REGISTRY[name]
        assert spec.openml_id == oml_id
        assert spec.paper_instances == rows
        assert spec.paper_features == feats
        assert spec.paper_classes == classes

    def test_feature_ordering_roughly_descending(self):
        """Table 2 is printed in (near-)descending feature order; verify the
        broad ordering without requiring strict sortedness (the paper's own
        listing swaps a couple of adjacent rows, e.g. vehicle/segment)."""
        feats = [spec[3] for spec in _TABLE2]
        inversions = sum(
            1 for a, b in zip(feats, feats[1:]) if b > a
        )
        assert feats[0] == max(feats)
        assert feats[-1] == min(feats)
        assert inversions <= 2

"""Analysis layer: amortization, guideline, overfitting, runtime, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    AMORTIZATION_RUNS,
    OverfitReport,
    Priority,
    Recommendation,
    RuntimeRow,
    SystemEnergyProfile,
    TaskRequirements,
    adherence_ranking,
    ascii_scatter,
    bootstrap_mean,
    cheapest_system,
    count_overfitting,
    crossover_point,
    early_stopping_saving,
    energy_vs_predictions,
    format_table,
    most_overfit_datasets,
    recommend,
    runtime_table,
    trillion_prediction_costs,
)


# --- amortization (Fig 4 / Table 4) ---------------------------------------- #
TABPFN = SystemEnergyProfile("TabPFN", execution_kwh=1e-5,
                             inference_kwh_per_instance=4e-10)
FLAML = SystemEnergyProfile("FLAML", execution_kwh=1e-3,
                            inference_kwh_per_instance=8e-13)
AUTOGLUON = SystemEnergyProfile("AutoGluon", execution_kwh=3e-3,
                                inference_kwh_per_instance=4e-11)


class TestAmortization:
    def test_total_energy_linear(self):
        assert TABPFN.total_kwh(0) == pytest.approx(1e-5)
        assert TABPFN.total_kwh(1e6) == pytest.approx(1e-5 + 4e-4)

    def test_negative_predictions_rejected(self):
        with pytest.raises(ValueError):
            TABPFN.total_kwh(-1)

    def test_tabpfn_cheapest_at_small_scale(self):
        """O2: below the crossover TabPFN wins."""
        assert cheapest_system([TABPFN, FLAML, AUTOGLUON], 100).system == \
            "TabPFN"

    def test_flaml_cheapest_at_large_scale(self):
        assert cheapest_system([TABPFN, FLAML, AUTOGLUON], 1e7).system == \
            "FLAML"

    def test_crossover_point_positive(self):
        n = crossover_point(TABPFN, FLAML)
        assert n is not None
        # at the crossover, totals are equal
        assert TABPFN.total_kwh(n) == pytest.approx(FLAML.total_kwh(n))

    def test_crossover_none_when_dominated(self):
        a = SystemEnergyProfile("a", 1e-5, 1e-12)
        b = SystemEnergyProfile("b", 1e-3, 1e-11)
        assert crossover_point(a, b) is None

    def test_crossover_none_when_parallel(self):
        a = SystemEnergyProfile("a", 1e-5, 1e-12)
        b = SystemEnergyProfile("b", 1e-3, 1e-12)
        assert crossover_point(a, b) is None

    def test_energy_vs_predictions_series(self):
        curves = energy_vs_predictions([TABPFN, FLAML], np.array([1e2, 1e5]))
        assert set(curves) == {"TabPFN", "FLAML"}
        assert curves["TabPFN"].shape == (2,)

    def test_trillion_costs_sorted_desc(self):
        rows = trillion_prediction_costs([TABPFN, FLAML, AUTOGLUON])
        assert rows[0].system == "TabPFN"        # steepest slope
        energies = [r.energy_kwh for r in rows]
        assert energies == sorted(energies, reverse=True)

    def test_trillion_costs_conversions(self):
        rows = trillion_prediction_costs([FLAML])
        row = rows[0]
        assert row.co2_kg == pytest.approx(row.energy_kwh * 0.222)
        assert row.cost_eur == pytest.approx(row.energy_kwh * 0.20)

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            cheapest_system([], 10)


# --- guideline (Fig 8) ------------------------------------------------------ #
class TestGuideline:
    def test_development_route(self):
        rec = recommend(TaskRequirements(
            search_budget_s=60, n_classes=2,
            expected_executions=AMORTIZATION_RUNS + 1,
            has_development_compute=True,
        ))
        assert rec.system == "CAML(tuned)"
        assert rec.tune_first

    def test_no_dev_compute_blocks_tuning_route(self):
        rec = recommend(TaskRequirements(
            search_budget_s=60, n_classes=2,
            expected_executions=10_000,
            has_development_compute=False,
        ))
        assert rec.system != "CAML(tuned)"

    def test_small_budget_few_classes_tabpfn(self):
        rec = recommend(TaskRequirements(search_budget_s=5, n_classes=8))
        assert rec.system == "TabPFN"

    def test_small_budget_many_classes_caml(self):
        rec = recommend(TaskRequirements(search_budget_s=5, n_classes=50))
        assert rec.system == "CAML"

    def test_priority_fast_inference_flaml(self):
        rec = recommend(TaskRequirements(
            search_budget_s=300, n_classes=2,
            priority=Priority.FAST_INFERENCE,
        ))
        assert rec.system == "FLAML"

    def test_priority_accuracy_autogluon(self):
        rec = recommend(TaskRequirements(
            search_budget_s=300, n_classes=2, priority=Priority.ACCURACY,
        ))
        assert rec.system == "AutoGluon"

    def test_priority_pareto_caml(self):
        rec = recommend(TaskRequirements(
            search_budget_s=300, n_classes=2, priority=Priority.PARETO,
        ))
        assert rec.system == "CAML"

    def test_invalid_requirements(self):
        with pytest.raises(ValueError):
            recommend(TaskRequirements(search_budget_s=0, n_classes=2))
        with pytest.raises(ValueError):
            recommend(TaskRequirements(search_budget_s=10, n_classes=1))


# --- overfitting (Table 6) --------------------------------------------------- #
class TestOverfitting:
    def test_count(self):
        short = {"a": 0.8, "b": 0.7, "c": 0.9}
        long = {"a": 0.85, "b": 0.6, "c": 0.89}
        rep = count_overfitting(short, long, system="X")
        assert rep.n_overfit == 2
        assert set(rep.overfit_datasets) == {"b", "c"}
        assert rep.fraction == pytest.approx(2 / 3)

    def test_tolerance(self):
        short = {"a": 0.80}
        long = {"a": 0.79}
        rep = count_overfitting(short, long, tolerance=0.05)
        assert rep.n_overfit == 0

    def test_no_common_datasets(self):
        with pytest.raises(ValueError):
            count_overfitting({"a": 1.0}, {"b": 1.0})

    def test_most_overfit(self):
        reports = [
            OverfitReport("s1", 2, 3, ("kc1", "cnae-9")),
            OverfitReport("s2", 1, 3, ("kc1",)),
        ]
        top = most_overfit_datasets(reports, top=1)
        assert top[0] == ("kc1", 2)

    def test_early_stopping_saving(self):
        assert early_stopping_saving(0.001, 0.005, 0.5) == pytest.approx(
            0.002
        )
        with pytest.raises(ValueError):
            early_stopping_saving(0.001, 0.005, 2.0)


# --- runtime (Table 7) -------------------------------------------------------- #
class _Rec:
    def __init__(self, system, configured, actual):
        self.system = system
        self.configured_seconds = configured
        self.actual_seconds = actual


class TestRuntime:
    def test_aggregation(self):
        rows = runtime_table([
            _Rec("CAML", 10, 10.4), _Rec("CAML", 10, 10.6),
            _Rec("AutoGluon", 10, 22.0),
        ])
        caml = next(r for r in rows if r.system == "CAML")
        assert caml.mean_actual_s == pytest.approx(10.5)
        assert caml.overrun_ratio == pytest.approx(1.05)

    def test_sorted_adherent_first(self):
        rows = runtime_table([
            _Rec("slow", 10, 50.0), _Rec("fast", 10, 10.0),
        ])
        assert rows[0].system == "fast"

    def test_adherence_ranking(self):
        rows = runtime_table([
            _Rec("a", 10, 20.0), _Rec("b", 10, 11.0),
        ])
        ranked = adherence_ranking(rows)
        assert ranked[0][0] == "b"

    def test_formatted(self):
        row = RuntimeRow("x", 10.0, 10.47, 0.05)
        assert "10.47" in row.formatted()


# --- reporting ----------------------------------------------------------------- #
class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.0], ["yy", 2.345]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_format_table_nan_dash(self):
        text = format_table(["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_ascii_scatter_contains_markers(self):
        text = ascii_scatter(
            {"CAML": [(1.0, 0.5)], "TabPFN": [(2.0, 0.7)]},
        )
        assert "C" in text and "T" in text
        assert "legend" in text

    def test_ascii_scatter_log_axis(self):
        text = ascii_scatter(
            {"a": [(1e-5, 0.1), (1e-1, 0.9)]}, logx=True,
        )
        assert "(log)" in text

    def test_ascii_scatter_empty(self):
        assert ascii_scatter({}) == "(no data)"

    def test_bootstrap_mean_close_to_mean(self):
        mu, sd = bootstrap_mean([1.0, 2.0, 3.0], n_boot=500)
        assert mu == pytest.approx(2.0, abs=0.2)
        assert sd > 0

    def test_bootstrap_mean_empty(self):
        mu, sd = bootstrap_mean([])
        assert np.isnan(mu) and np.isnan(sd)

    def test_bootstrap_mean_single_value(self):
        mu, sd = bootstrap_mean([5.0])
        assert mu == 5.0
        assert sd == 0.0

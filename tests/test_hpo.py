"""HPO engines: random search, BO, successive halving, pruning, NSGA-II."""

import numpy as np
import pytest

from repro.exceptions import TrialPruned
from repro.hpo import (
    BayesianOptimizer,
    Individual,
    MedianPruner,
    NSGAII,
    RandomSearch,
    SuccessiveHalving,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    fidelity_schedule,
    stratified_subset,
)
from repro.pipeline import Categorical, ConfigSpace, Float


def quad_space():
    space = ConfigSpace()
    space.add(Float("x", -2.0, 2.0))
    space.add(Float("y", -2.0, 2.0))
    return space


def quad_score(config):
    # maximum (=0) at x=1, y=-0.5
    return -((config["x"] - 1.0) ** 2) - (config["y"] + 0.5) ** 2


class TestRandomSearch:
    def test_finds_decent_point(self):
        rs = RandomSearch(quad_space(), random_state=0)
        for _ in range(60):
            c = rs.ask()
            rs.tell(c, quad_score(c))
        assert rs.best.score > -0.5

    def test_best_none_before_tell(self):
        assert RandomSearch(quad_space()).best is None


class TestBayesianOptimizer:
    def test_beats_random_on_budget(self):
        def run(opt_cls, seed, **kw):
            opt = opt_cls(quad_space(), random_state=seed, **kw)
            for _ in range(35):
                c = opt.ask()
                opt.tell(c, quad_score(c))
            return opt.best.score

        bo_scores = [run(BayesianOptimizer, s, n_init=8) for s in range(3)]
        rs_scores = [run(RandomSearch, s) for s in range(3)]
        assert np.mean(bo_scores) >= np.mean(rs_scores) - 0.05

    def test_warm_start_evaluated_first(self):
        opt = BayesianOptimizer(quad_space(), n_init=5, random_state=0)
        warm = [{"x": 1.0, "y": -0.5}]
        opt.warm_start(warm)
        assert opt.ask() == warm[0]

    def test_nan_score_treated_as_failure(self):
        opt = BayesianOptimizer(quad_space(), n_init=2, random_state=0)
        c = opt.ask()
        opt.tell(c, float("nan"))
        assert opt.trials[0].score == -1.0

    def test_invalid_n_init(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(quad_space(), n_init=0)

    def test_surrogate_phase_produces_valid_configs(self):
        space = quad_space()
        opt = BayesianOptimizer(space, n_init=3, random_state=1)
        for _ in range(10):
            c = opt.ask()
            space.validate(c)
            opt.tell(c, quad_score(c))

    def test_conditional_space_supported(self):
        space = ConfigSpace()
        space.add(Categorical("algo", ("a", "b")))
        space.add(Float("p", 0.0, 1.0))
        space.add_condition("p", "algo", ("a",))
        opt = BayesianOptimizer(space, n_init=4, random_state=0)
        for _ in range(12):
            c = opt.ask()
            score = c.get("p", 0.5)
            opt.tell(c, score)
        assert opt.best.score > 0.5


class TestSuccessiveHalving:
    def test_fidelity_schedule_geometric(self):
        sizes = fidelity_schedule(1000, n_classes=2, base_per_class=10)
        assert sizes[0] == 20
        assert sizes[-1] == 1000
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_fidelity_schedule_small_data(self):
        assert fidelity_schedule(15, n_classes=2) == [15]

    def test_fidelity_schedule_invalid(self):
        with pytest.raises(ValueError):
            fidelity_schedule(0, 2)
        with pytest.raises(ValueError):
            fidelity_schedule(10, 2, eta=1)

    def test_stratified_subset_balanced(self):
        y = np.array([0] * 90 + [1] * 10)
        idx = stratified_subset(y, 20, random_state=0)
        sub = y[idx]
        assert np.sum(sub == 1) >= 5

    def test_stratified_subset_full_when_n_large(self):
        y = np.array([0, 1] * 5)
        assert len(stratified_subset(y, 100)) == 10

    def test_halving_finds_best_candidate(self):
        y = np.arange(64) % 2
        candidates = [{"value": v} for v in (0.1, 0.5, 0.9, 0.3)]

        def evaluate(config, idx):
            return config["value"] + 0.001 * len(idx)

        sh = SuccessiveHalving(candidates, random_state=0)
        best, score = sh.run(y, evaluate, n_classes=2)
        assert best["value"] == 0.9
        assert len(sh.rungs) >= 1

    def test_halving_survivors_shrink(self):
        y = np.arange(200) % 2
        candidates = [{"value": v} for v in np.linspace(0, 1, 8)]
        sh = SuccessiveHalving(candidates, random_state=0)
        sh.run(y, lambda c, idx: c["value"], n_classes=2)
        alive_counts = [len(r.survivors) for r in sh.rungs]
        assert alive_counts[-1] <= alive_counts[0]

    def test_crashing_candidate_dropped(self):
        y = np.arange(40) % 2

        def evaluate(config, idx):
            if config["value"] == 0.9:
                raise RuntimeError("boom")
            return config["value"]

        sh = SuccessiveHalving(
            [{"value": 0.9}, {"value": 0.2}], random_state=0
        )
        best, _ = sh.run(y, evaluate, n_classes=2)
        assert best["value"] == 0.2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            SuccessiveHalving([])


class TestMedianPruner:
    def test_prunes_below_median(self):
        pruner = MedianPruner(n_warmup_trials=2, n_warmup_steps=0)
        # two completed good trials
        for tid, vals in ((0, [1.0, 2.0]), (1, [1.1, 2.1])):
            for step, v in enumerate(vals):
                pruner.report(tid, step, v)
            pruner.complete(tid)
        with pytest.raises(TrialPruned):
            pruner.report(2, 0, 0.1)

    def test_no_pruning_during_warmup(self):
        pruner = MedianPruner(n_warmup_trials=5, n_warmup_steps=0)
        pruner.report(0, 0, -100.0)   # no peers yet: must not raise

    def test_step_ordering_enforced(self):
        pruner = MedianPruner()
        pruner.report(0, 0, 1.0)
        with pytest.raises(ValueError):
            pruner.report(0, 2, 1.0)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            MedianPruner(n_warmup_trials=0)


class TestNSGAII:
    def test_dominates(self):
        a = Individual({}, score=1.0, complexity=1.0)
        b = Individual({}, score=0.5, complexity=2.0)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_non_dominated_sort_fronts(self):
        pop = [
            Individual({}, score=1.0, complexity=1.0),
            Individual({}, score=0.9, complexity=0.5),
            Individual({}, score=0.1, complexity=9.0),
        ]
        fronts = fast_non_dominated_sort(pop)
        assert len(fronts[0]) == 2        # the first two are Pareto-optimal
        assert pop[2].rank == 1

    def test_crowding_extremes_infinite(self):
        front = [
            Individual({}, score=s, complexity=c)
            for s, c in ((0.1, 3.0), (0.5, 2.0), (0.9, 1.0))
        ]
        crowding_distance(front)
        ranked = sorted(front, key=lambda i: i.score)
        assert ranked[0].crowding == np.inf
        assert ranked[-1].crowding == np.inf

    def test_evolution_improves_population(self):
        space = quad_space()
        ga = NSGAII(space, population_size=10, random_state=0)
        configs = ga.next_generation()
        first_best = -np.inf
        for gen in range(6):
            evaluated = [
                Individual(c, score=quad_score(c), complexity=1.0)
                for c in configs
            ]
            if gen == 0:
                first_best = max(i.score for i in evaluated)
            ga.tell(evaluated)
            configs = ga.next_generation()
        assert ga.best.score >= first_best

    def test_population_size_respected(self):
        ga = NSGAII(quad_space(), population_size=6, random_state=0)
        configs = ga.next_generation()
        ga.tell([Individual(c, score=0.0, complexity=1.0) for c in configs])
        assert len(ga.population) == 6

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            NSGAII(quad_space(), population_size=1)

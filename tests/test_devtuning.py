"""Development-stage tuning (Sec 2.5): objective, parameter space,
representative selection, the tuner loop."""

import numpy as np
import pytest

from repro.datasets.registry import dev_pool_specs
from repro.devtuning import (
    DevelopmentTuner,
    SAMPLING_CHOICES,
    aggregate_improvement,
    build_automl_parameter_space,
    config_to_caml_parameters,
    default_parameters,
    n_tuned_parameters,
    relative_improvement,
    select_representative_datasets,
)
from repro.pipeline.spaces import ALL_CLASSIFIERS


class TestObjective:
    def test_positive_when_better(self):
        assert relative_improvement(0.9, 0.8) > 0

    def test_negative_when_worse(self):
        assert relative_improvement(0.7, 0.8) < 0

    def test_zero_when_equal(self):
        assert relative_improvement(0.8, 0.8) == 0.0

    def test_normalised_by_max(self):
        # (0.9-0.6)/0.9
        assert relative_improvement(0.9, 0.6) == pytest.approx(0.3 / 0.9)

    def test_zero_scores_safe(self):
        assert relative_improvement(0.0, 0.0) == 0.0

    def test_aggregate_sums(self):
        total = aggregate_improvement([0.9, 0.7], [0.8, 0.8])
        expected = relative_improvement(0.9, 0.8) + relative_improvement(
            0.7, 0.8
        )
        assert total == pytest.approx(expected)

    def test_aggregate_shape_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_improvement([0.9], [0.8, 0.7])


class TestParameterSpace:
    def test_contains_all_six_system_parameters(self):
        space = build_automl_parameter_space()
        for name in ("holdout_fraction", "evaluation_fraction", "sampling",
                     "refit", "resample_validation", "incremental_training"):
            assert name in space.hyperparameters

    def test_contains_per_classifier_flags(self):
        space = build_automl_parameter_space()
        for clf in ALL_CLASSIFIERS:
            assert f"use_{clf}" in space.hyperparameters

    def test_parameter_count(self):
        # 15 inclusion flags + 6 system parameters (scaled-down analogue of
        # the paper's 192)
        assert n_tuned_parameters() == 21

    def test_config_to_parameters_roundtrip(self, rng):
        space = build_automl_parameter_space()
        for _ in range(20):
            config = space.sample(rng)
            params = config_to_caml_parameters(config)
            assert params.classifiers   # never empty
            assert 0.1 <= params.holdout_fraction <= 0.5
            assert params.sample_cap in SAMPLING_CHOICES

    def test_all_excluded_falls_back(self):
        config = {f"use_{c}": False for c in ALL_CLASSIFIERS}
        params = config_to_caml_parameters(config)
        assert params.classifiers == ["decision_tree"]

    def test_default_parameters_full_space(self):
        params = default_parameters()
        assert set(params.classifiers) == set(ALL_CLASSIFIERS)
        assert params.holdout_fraction == pytest.approx(0.33)


class TestRepresentativeSelection:
    def test_selects_k(self):
        specs = dev_pool_specs(30)
        chosen = select_representative_datasets(specs, k=5)
        assert len(chosen) == 5
        assert len({s.name for s in chosen}) == 5

    def test_k_larger_than_pool_returns_all(self):
        specs = dev_pool_specs(4)
        assert len(select_representative_datasets(specs, k=10)) == 4

    def test_spread_over_sizes(self):
        """Representatives should span the size range, not cluster."""
        specs = dev_pool_specs(60)
        chosen = select_representative_datasets(specs, k=8)
        sizes = sorted(s.paper_instances for s in chosen)
        assert sizes[-1] / sizes[0] > 10

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            select_representative_datasets(dev_pool_specs(5), k=0)

    def test_deterministic(self):
        specs = dev_pool_specs(30)
        a = select_representative_datasets(specs, k=5)
        b = select_representative_datasets(specs, k=5)
        assert [s.name for s in a] == [s.name for s in b]


class TestTuner:
    @pytest.fixture(scope="class")
    def result(self):
        tuner = DevelopmentTuner(
            search_budget_s=8.0, top_k=3, n_bo_iterations=4,
            runs_per_dataset=1, time_scale=0.003, random_state=0,
        )
        return tuner.tune(dev_pool_specs(12))

    def test_returns_best_parameters(self, result):
        assert result.best_parameters.classifiers
        assert result.n_trials == 4

    def test_development_energy_tracked(self, result):
        """The Figure 7 'development kWh' bubble must be real energy."""
        assert result.development_energy.kwh > 0
        assert result.development_energy.duration_s > 0

    def test_default_scores_recorded(self, result):
        assert len(result.default_scores) == 3
        assert all(0 <= v <= 1 for v in result.default_scores.values())

    def test_amortization_math(self, result):
        runs = result.amortization_runs(
            tuned_execution_kwh=0.001, default_execution_kwh=0.002
        )
        assert runs == pytest.approx(result.development_energy.kwh / 0.001)

    def test_amortization_infinite_when_no_saving(self, result):
        assert result.amortization_runs(0.002, 0.001) == float("inf")

    def test_invalid_tuner_args(self):
        with pytest.raises(ValueError):
            DevelopmentTuner(runs_per_dataset=0)
        with pytest.raises(ValueError):
            DevelopmentTuner(n_bo_iterations=0)

"""Property-based tests (hypothesis) on the serving invariants:
the micro-batcher never reorders, drops or over-fills; the server
answers every request exactly once; artifact round-trips and seeded
loadtests are bit-identical."""

import pickle
import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.serving import (
    ArtifactStore,
    BatchPolicy,
    LoadProfile,
    MicroBatcher,
    PredictionRequest,
    PredictionServer,
    SLORouter,
    generate_requests,
)

from tests.serving_stubs import StubModel, stub_variants

# keep hypothesis fast and deterministic in CI
FAST = settings(max_examples=30, deadline=None)

row_lists = st.lists(st.integers(1, 20), min_size=1, max_size=40)
policies = st.builds(
    BatchPolicy,
    max_batch_rows=st.integers(1, 64),
    max_batch_requests=st.integers(1, 16),
    max_wait_s=st.floats(0.0, 0.1, allow_nan=False),
)


def _requests(rows):
    return [PredictionRequest(request_id=i, arrival_s=0.001 * i,
                              n_rows=n)
            for i, n in enumerate(rows)]


@given(rows=row_lists, policy=policies)
@FAST
def test_batcher_never_reorders_or_drops(rows, policy):
    batcher = MicroBatcher(policy)
    for request in _requests(rows):
        batcher.add(request)
    drained = []
    while len(batcher):
        batch = batcher.take()
        assert batch, "take() on a non-empty batcher must yield"
        drained.extend(batch)
    assert [r.request_id for r in drained] == list(range(len(rows)))


@given(rows=row_lists, policy=policies)
@FAST
def test_batcher_respects_caps(rows, policy):
    batcher = MicroBatcher(policy)
    for request in _requests(rows):
        batcher.add(request)
    while len(batcher):
        batch = batcher.take()
        assert len(batch) <= policy.max_batch_requests
        batch_rows = sum(r.n_rows for r in batch)
        # a single oversized request may exceed the row cap (admission
        # normally filters it); any multi-request batch must fit
        assert batch_rows <= policy.max_batch_rows or len(batch) == 1


@given(rows=row_lists, policy=policies, slots=st.integers(1, 4))
@FAST
def test_server_answers_every_request_exactly_once(rows, policy, slots):
    # cap requests at the server's batch ceiling so none are rejected
    rows = [min(n, policy.max_batch_rows) for n in rows]
    router = SLORouter(stub_variants())
    server = PredictionServer(router, policy=policy, n_slots=slots)
    responses = server.process(_requests(rows))
    assert [r.request_id for r in responses] == list(range(len(rows)))
    assert all(r.status == "ok" for r in responses)
    assert [r.n_rows for r in responses] == rows


@given(rows=row_lists, policy=policies, slots=st.integers(1, 4))
@FAST
def test_server_seeded_replay_is_bit_identical(rows, policy, slots):
    def run():
        router = SLORouter(stub_variants())
        server = PredictionServer(router, policy=policy, n_slots=slots)
        return [
            (r.request_id, r.status, r.variant, r.started_s,
             r.completed_s, r.joules)
            for r in server.process(_requests(rows))
        ]

    assert run() == run()


@given(
    weights=st.lists(
        st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8,
    ),
    label=st.integers(0, 1),
)
@FAST
def test_artifact_round_trip_is_bit_identical(weights, label):
    model = StubModel(label=label)
    model.weights = np.asarray(weights)
    X = np.linspace(-2, 2, 30).reshape(10, 3)
    with tempfile.TemporaryDirectory() as td:
        store = ArtifactStore(td)
        manifest = store.save(
            model, system="Stub", variant="ensemble",
            dataset_fingerprint="prop", accuracy=0.5,
        )
        loaded = store.load(manifest.artifact_id)
    assert np.array_equal(loaded.model.weights, model.weights)
    assert np.array_equal(loaded.predict(X), model.predict(X))
    assert pickle.dumps(loaded.model, protocol=5) \
        == pickle.dumps(model, protocol=5)


@given(seed=st.integers(0, 2**31 - 1))
@FAST
def test_loadgen_seeded_replay(seed):
    profile = LoadProfile(n_requests=50)
    a = generate_requests(profile, random_state=seed)
    b = generate_requests(profile, random_state=seed)
    assert [(r.arrival_s, r.n_rows, r.budget) for r in a] \
        == [(r.arrival_s, r.n_rows, r.budget) for r in b]

"""The whole-program dataflow tier (GRN101-GRN104) and its engine.

Fixture packages under ``tests/lint_fixtures/`` carry one known-positive
and one known-negative tree per rule; each rule is run in isolation over
its fixtures so a failure names the rule, not the registry.  The rest
covers the resolve pass (call graph, worker roots, package re-exports,
phase spans), the taint engine's summaries, the SARIF reporter, the
``--changed`` closure and the baseline ratchet.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import LintEngine, build_index, render_sarif
from repro.lint.dataflow import TaintAnalysis, classify_source
from repro.lint.rules.determinism import DeterminismTaintRule
from repro.lint.rules.leaks import ResourceLeakRule
from repro.lint.rules.races import WorkerSharedStateRule
from repro.lint.rules.vectorization import VectorizationRule

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

RULE_OF = {
    "GRN101": DeterminismTaintRule,
    "GRN102": WorkerSharedStateRule,
    "GRN103": ResourceLeakRule,
    "GRN104": VectorizationRule,
}


def run_fixture(name: str, rule_cls):
    root = FIXTURES / name
    return LintEngine(rules=[rule_cls], root=root).run([root])


# -- fixture-driven positive/negative pairs ------------------------------------
class TestFixtures:
    @pytest.mark.parametrize("code", sorted(RULE_OF))
    def test_rule_fires_on_positive_fixture(self, code):
        result = run_fixture(f"{code.lower()}_pos", RULE_OF[code])
        fired = [f for f in result.findings if f.code == code]
        assert fired, f"{code} silent on its positive fixture"

    @pytest.mark.parametrize("code", sorted(RULE_OF))
    def test_rule_silent_on_negative_fixture(self, code):
        result = run_fixture(f"{code.lower()}_neg", RULE_OF[code])
        fired = [f for f in result.findings if f.code == code]
        assert not fired, fired

    def test_grn101_reports_interprocedural_flow(self):
        result = run_fixture("grn101_pos", DeterminismTaintRule)
        messages = [f.message for f in result.findings]
        assert any("wall-clock read" in m and "cache put" in m
                   for m in messages), messages
        assert any("unseeded global RNG" in m and "journal record" in m
                   for m in messages), messages

    def test_grn102_flags_indirect_write_and_cache(self):
        result = run_fixture("grn102_pos", WorkerSharedStateRule)
        messages = [f.message for f in result.findings]
        # the mutation happens in note(), one call below the root
        assert any("pkg.worker.note" in m and "_SEEN" in m
                   for m in messages), messages
        assert any("lru_cache" in m for m in messages), messages

    def test_grn103_names_the_leaking_binding(self):
        result = run_fixture("grn103_pos", ResourceLeakRule)
        messages = [f.message for f in result.findings]
        assert any("'ProcessPoolExecutor' bound to 'pool'" in m
                   for m in messages), messages
        assert any("'open' bound to 'fh'" in m for m in messages)

    def test_grn104_annotates_phase(self):
        result = run_fixture("grn104_pos", VectorizationRule)
        phases = {
            f.message.split("phase: ")[1].split(")")[0]
            for f in result.findings
        }
        assert "fit" in phases and "inference" in phases, phases

    def test_severity_tiers(self):
        for code, severity in [("GRN101", "error"), ("GRN102", "error"),
                               ("GRN103", "warning"), ("GRN104", "info")]:
            result = run_fixture(f"{code.lower()}_pos", RULE_OF[code])
            assert {f.severity for f in result.findings
                    if f.code == code} == {severity}

    def test_inline_waiver_silences_dataflow_finding(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").touch()
        (pkg / "mod.py").write_text(
            "import time\n"
            "def persist(cache, v):\n"
            "    cache.put(time.time(), v)"
            "  # repro-lint: disable=GRN101  # latency is the payload\n"
        )
        result = LintEngine(
            rules=[DeterminismTaintRule], root=tmp_path).run([tmp_path])
        assert not result.findings
        assert result.waived == 1


# -- the resolve pass ----------------------------------------------------------
def make_index(tmp_path, files: dict):
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
        package_dir = tmp_path / Path(rel).parts[0]
        (package_dir / "__init__.py").touch()
        for part in Path(rel).parent.parts[1:]:
            package_dir = package_dir / part
            (package_dir / "__init__.py").touch()
    result = LintEngine(rules=[], root=tmp_path).run([tmp_path])
    return result.index


class TestCallGraph:
    def test_resolves_cross_module_calls(self, tmp_path):
        index = make_index(tmp_path, {
            "app/a.py": "from app.b import helper\n"
                        "def top():\n    return helper()\n",
            "app/b.py": "def helper():\n    return 1\n",
        })
        assert index.edges["app.a.top"] == ["app.b.helper"]
        assert index.reverse_edges["app.b.helper"] == ["app.a.top"]

    def test_resolves_package_reexports(self, tmp_path):
        index = make_index(tmp_path, {
            "app/__init__.py": "from app.inner import helper\n",
            "app/inner.py": "def helper():\n    return 1\n",
            "app/user.py": "from app import helper\n"
                           "def top():\n    return helper()\n",
        })
        assert index.edges["app.user.top"] == ["app.inner.helper"]

    def test_worker_roots_from_submit_and_initializer(self, tmp_path):
        index = make_index(tmp_path, {
            "app/w.py": (
                "def job(x):\n    return x\n"
                "def init(q):\n    pass\n"
                "def launch(pool, Pool):\n"
                "    pool.submit(job, 1)\n"
                "    Pool(initializer=init)\n"
            ),
        })
        assert index.worker_roots == ["app.w.init", "app.w.job"]

    def test_reachability_is_transitive(self, tmp_path):
        index = make_index(tmp_path, {
            "app/w.py": (
                "def leaf():\n    return 0\n"
                "def mid():\n    return leaf()\n"
                "def job():\n    return mid()\n"
                "def launch(pool):\n    pool.submit(job)\n"
            ),
        })
        reach = index.reachable_from(["app.w.job"])
        assert reach == ["app.w.job", "app.w.leaf", "app.w.mid"]

    def test_self_method_resolution_through_bases(self, tmp_path):
        index = make_index(tmp_path, {
            "app/c.py": (
                "class Base:\n"
                "    def helper(self):\n        return 1\n"
                "class Child(Base):\n"
                "    def run(self):\n        return self.helper()\n"
            ),
        })
        assert index.edges["app.c.Child.run"] == ["app.c.Base.helper"]

    def test_phase_spans_attach_to_call_sites(self, tmp_path):
        index = make_index(tmp_path, {
            "app/p.py": (
                "from app.tracing import trace_span\n"
                "def inner():\n    return 1\n"
                "def outer():\n"
                "    with trace_span('fit'):\n"
                "        return inner()\n"
            ),
            "app/tracing.py": "def trace_span(name):\n    return name\n",
        })
        assert index.phases_into("app.p.inner") == ["fit"]

    def test_module_mutable_table(self, tmp_path):
        index = make_index(tmp_path, {
            "app/m.py": "STATE = {}\nLIMIT = 3\nNAMES = ['a']\n",
        })
        mod = index.modules["app.m"]
        assert set(mod.mutables) == {"STATE", "NAMES"}
        assert set(mod.bindings) == {"STATE", "LIMIT", "NAMES"}


# -- the taint engine ----------------------------------------------------------
class TestDataflow:
    def test_classify_source(self):
        assert classify_source("time.time") == "clock"
        assert classify_source("numpy.random.rand") == "rng"
        assert classify_source("numpy.random.default_rng") is None
        assert classify_source("os.urandom") == "entropy"
        assert classify_source("id") == "id"
        assert classify_source("sorted") is None

    def test_summaries_propagate_through_returns(self, tmp_path):
        index = make_index(tmp_path, {
            "app/f.py": (
                "import time\n"
                "def stamp():\n    return time.time()\n"
                "def wrap():\n    return stamp()\n"
            ),
        })
        analysis = TaintAnalysis(index)
        assert analysis.summaries["app.f.stamp"].returns == {"clock"}
        assert analysis.summaries["app.f.wrap"].returns == {"clock"}

    def test_param_to_sink_summary(self, tmp_path):
        index = make_index(tmp_path, {
            "app/f.py": (
                "def store(cache, key):\n    cache.put(key, 1)\n"
            ),
        })
        analysis = TaintAnalysis(index)
        summary = analysis.summaries["app.f.store"]
        assert summary.param_to_sink == {1: "cache put"}

    def test_set_order_taint_and_sorted_sanitizer(self, tmp_path):
        index = make_index(tmp_path, {
            "app/f.py": (
                "def bad(journal, xs):\n"
                "    names = set(xs)\n"
                "    out = list(names)\n"
                "    journal.record_cell(out)\n"
                "def good(journal, xs):\n"
                "    names = set(xs)\n"
                "    out = sorted(names)\n"
                "    journal.record_cell(out)\n"
            ),
        })
        analysis = TaintAnalysis(index)
        bad = analysis.sink_hits(index.functions["app.f.bad"])
        good = analysis.sink_hits(index.functions["app.f.good"])
        assert [sorted(h.kinds) for h in bad] == [["set-order"]]
        assert good == []

    def test_field_taint_crosses_methods(self, tmp_path):
        index = make_index(tmp_path, {
            "app/f.py": (
                "import time\n"
                "class Runner:\n"
                "    def start(self):\n"
                "        self.t0 = time.time()\n"
                "    def finish(self, journal):\n"
                "        journal.record_cell(self.t0)\n"
            ),
        })
        analysis = TaintAnalysis(index)
        hits = analysis.sink_hits(index.functions["app.f.Runner.finish"])
        assert [sorted(h.kinds) for h in hits] == [["clock"]]

    def test_sanctioned_modules_are_taint_free(self, tmp_path):
        index = make_index(tmp_path, {
            "repro/utils/timer.py": (
                "import time\n"
                "def now():\n    return time.time()\n"
            ),
            "repro/other.py": (
                "from repro.utils.timer import now\n"
                "def persist(cache, v):\n    cache.put(now(), v)\n"
            ),
        })
        analysis = TaintAnalysis(index)
        assert analysis.summaries["repro.utils.timer.now"].returns == set()
        hits = analysis.sink_hits(index.functions["repro.other.persist"])
        assert hits == []


# -- SARIF reporter ------------------------------------------------------------
class TestSarif:
    def test_sarif_document_shape(self):
        result = run_fixture("grn101_pos", DeterminismTaintRule)
        doc = json.loads(render_sarif(result.findings, []))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "GRN101" in rule_ids
        assert run["results"], "positive fixture must produce results"
        for item in run["results"]:
            assert item["baselineState"] == "new"
            location = item["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1

    def test_sarif_levels_follow_severity(self):
        result = run_fixture("grn104_pos", VectorizationRule)
        doc = json.loads(render_sarif(result.findings, []))
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels == {"note"}

    def test_sarif_marks_baselined_unchanged(self):
        result = run_fixture("grn103_pos", ResourceLeakRule)
        doc = json.loads(render_sarif([], result.findings))
        states = {r["baselineState"]
                  for r in doc["runs"][0]["results"]}
        assert states == {"unchanged"}

    def test_cli_emits_valid_sarif(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        code = main(["lint", str(target), "--format", "sarif",
                     "--baseline", str(tmp_path / "b.json")])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "GRN004"


# -- --changed closure ---------------------------------------------------------
class TestChangedScope:
    def test_restrict_seed_keeps_reverse_importers(self, tmp_path):
        files = {
            "app/base.py": "import time\n"
                           "def t():\n    return time.time()\n",
            "app/user.py": "from app.base import t\n"
                           "def u(cache, v):\n    cache.put(t(), v)\n",
            "app/stranger.py": "import os\n"
                               "def s():\n    return os.getpid()\n",
        }
        for rel, text in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text)
        (tmp_path / "app" / "__init__.py").touch()
        engine = LintEngine(rules=[DeterminismTaintRule], root=tmp_path)
        result = engine.run([tmp_path], restrict_seed={"app/base.py"})
        # user.py is in scope through the reverse-dependency closure
        assert "app/user.py" in result.restricted
        assert "app/stranger.py" not in result.restricted
        assert {f.path for f in result.findings} == {"app/user.py"}

    def test_restrict_filters_per_file_findings(self, tmp_path):
        files = {
            "app/a.py": "import time\nx = time.time()\n",
            "app/b.py": "import time\ny = time.time()\n",
        }
        for rel, text in files.items():
            (tmp_path / rel).parent.mkdir(parents=True, exist_ok=True)
            (tmp_path / rel).write_text(text)
        (tmp_path / "app" / "__init__.py").touch()
        result = LintEngine(root=tmp_path).run(
            [tmp_path], restrict_seed={"app/a.py"})
        assert {f.path for f in result.findings} == {"app/a.py"}


# -- baseline ratchet ----------------------------------------------------------
class TestRatchet:
    def test_first_write_is_allowed(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        baseline = tmp_path / "b.json"
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()

    def test_growth_is_refused(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        baseline = tmp_path / "b.json"
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        target.write_text(
            "import time\na = time.time()\nb = time.time()\n")
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 1
        err = capsys.readouterr().err
        assert "refusing to grow the baseline" in err
        # the committed file is untouched by the refused write
        assert len(json.loads(baseline.read_text())["findings"]) == 1

    def test_growth_override(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        baseline = tmp_path / "b.json"
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        target.write_text(
            "import time\na = time.time()\nb = time.time()\n")
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline", "--allow-baseline-growth"]) == 0
        assert len(json.loads(baseline.read_text())["findings"]) == 2

    def test_shrinking_rewrite_is_allowed(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import time\na = time.time()\nb = time.time()\n")
        baseline = tmp_path / "b.json"
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        target.write_text("import time\na = time.time()\n")
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert len(json.loads(baseline.read_text())["findings"]) == 1


# -- severity-aware exit code --------------------------------------------------
class TestSeverityExit:
    def test_info_findings_do_not_fail_the_run(self, tmp_path, capsys):
        hot = tmp_path / "repro" / "models"
        hot.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").touch()
        (hot / "__init__.py").touch()
        (hot / "loopy.py").write_text(
            "class M:\n"
            "    def fit(self, X, y):\n"
            "        for c in range(3):\n"
            "            rows = X[y == c]\n"
            "        return self\n"
        )
        import os
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            code = main(["lint", "repro",
                         "--baseline", str(tmp_path / "b.json")])
            out = capsys.readouterr().out
        finally:
            os.chdir(cwd)
        # GRN005 fires too (no predict) -> must fail; so isolate GRN104
        # via the library instead for the pass case
        assert "GRN104" in out

    def test_engine_severity_partition(self):
        result = run_fixture("grn104_pos", VectorizationRule)
        assert result.findings
        assert all(f.severity == "info" for f in result.findings)
        failing = [f for f in result.findings
                   if f.severity in ("error", "warning")]
        assert not failing

"""CLI entry points."""

import json

import pytest

from repro.cli import build_parser, main


def test_systems_command(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    assert "CAML" in out and "TabPFN" in out
    assert "budget discipline" in out


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "credit-g" in out and "covertype" in out


def test_run_command(capsys):
    assert main([
        "run", "--system", "FLAML", "--dataset", "credit-g",
        "--budget", "10", "--time-scale", "0.004",
    ]) == 0
    out = capsys.readouterr().out
    assert "balanced accuracy" in out
    assert "execution kWh" in out


def test_run_rejects_unknown_system():
    with pytest.raises(SystemExit):
        main(["run", "--system", "H2O", "--dataset", "credit-g"])


def test_recommend_command(capsys):
    assert main([
        "recommend", "--budget", "5", "--classes", "3",
    ]) == 0
    assert "TabPFN" in capsys.readouterr().out


def test_recommend_priority(capsys):
    assert main([
        "recommend", "--budget", "300", "--classes", "2",
        "--priority", "accuracy",
    ]) == 0
    assert "AutoGluon" in capsys.readouterr().out


def test_recommend_dev_route(capsys):
    assert main([
        "recommend", "--budget", "60", "--classes", "2",
        "--executions", "100000", "--dev-compute",
    ]) == 0
    out = capsys.readouterr().out
    assert "CAML(tuned)" in out
    assert "tune the AutoML parameters first" in out


def test_grid_command_writes_results(tmp_path, capsys):
    out_path = tmp_path / "res.json"
    assert main([
        "grid", "--systems", "FLAML", "--datasets", "credit-g",
        "--budgets", "10", "--runs", "1",
        "--time-scale", "0.004", "--quiet",
        "--out", str(out_path),
    ]) == 0
    payload = json.loads(out_path.read_text())
    assert len(payload) == 1
    assert payload[0]["system"] == "FLAML"
    assert "Figure 3" in capsys.readouterr().out


def test_grid_command_reports_worker_telemetry(tmp_path, capsys):
    assert main([
        "grid", "--systems", "CAML", "TabPFN",
        "--datasets", "credit-g", "--budgets", "10", "--runs", "1",
        "--time-scale", "0.004", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "worker (pid)" in out
    assert "warm hits" in out
    assert "current cell" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_grid_trace_then_trace_command_text(tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    assert main([
        "grid", "--systems", "TabPFN", "--datasets", "credit-g",
        "--budgets", "10", "--runs", "1", "--time-scale", "0.004",
        "--quiet", "--trace", "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main(["trace", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "cell_lifecycle" in out
    assert "phase rollup" in out
    assert "cells.executed" in out


def test_trace_command_json_format(tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    assert main([
        "grid", "--systems", "FLAML", "--datasets", "credit-g",
        "--budgets", "10", "--runs", "1", "--time-scale", "0.004",
        "--quiet", "--trace", "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main(["trace", str(journal), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n_cells"] == 1
    assert payload["spans"], "traced journal must carry span events"
    assert payload["spans"][0]["spans"][0]["name"] == "cell_lifecycle"
    assert any(r["phase"] == "trial" for r in payload["rollup"])
    assert payload["metrics"]["trials.evaluated"]["value"] > 0


def test_trace_command_rejects_untraced_journal(tmp_path, capsys):
    journal = tmp_path / "plain.jsonl"
    assert main([
        "grid", "--systems", "TabPFN", "--datasets", "credit-g",
        "--budgets", "10", "--runs", "1", "--time-scale", "0.004",
        "--quiet", "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main(["trace", str(journal)]) == 1
    assert "no spans records" in capsys.readouterr().err


def test_grid_profile_prints_phase_table(capsys):
    assert main([
        "grid", "--systems", "FLAML", "--datasets", "credit-g",
        "--budgets", "10", "--runs", "1", "--time-scale", "0.004",
        "--quiet", "--profile",
    ]) == 0
    out = capsys.readouterr().out
    assert "self time (s)" in out
    assert "trial" in out

"""Load generation, the BENCH_serving report, the serving chaos
harness, and the serve/loadtest CLI surface."""

import json

import numpy as np
import pytest

from repro.serving import (
    LoadProfile,
    ServingBenchReport,
    generate_requests,
    prepare_artifacts,
    run_loadtest,
    run_serving_chaos,
    summarise_responses,
)

from tests.serving_stubs import stub_variants


@pytest.fixture(scope="module")
def caml_setup(tmp_path_factory):
    """One real trained-and-exported CAML store shared by the module."""
    root = tmp_path_factory.mktemp("serving-bench")
    return prepare_artifacts(root, system="CAML", dataset="credit-g",
                             budget_s=10.0, seed=3)


class TestLoadgen:
    def test_same_seed_bit_identical(self):
        profile = LoadProfile(n_requests=500)
        a = generate_requests(profile, random_state=11)
        b = generate_requests(profile, random_state=11)
        assert [(r.arrival_s, r.n_rows, r.budget) for r in a] \
            == [(r.arrival_s, r.n_rows, r.budget) for r in b]

    def test_different_seed_differs(self):
        profile = LoadProfile(n_requests=500)
        a = generate_requests(profile, random_state=11)
        b = generate_requests(profile, random_state=12)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_arrivals_monotone_rows_capped(self):
        profile = LoadProfile(n_requests=800, max_rows=16)
        requests = generate_requests(profile, random_state=0)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert max(r.n_rows for r in requests) <= 16
        assert min(r.n_rows for r in requests) >= 1

    def test_mean_gap_calibrated(self):
        profile = LoadProfile(n_requests=20_000,
                              mean_interarrival_s=0.01)
        requests = generate_requests(profile, random_state=5)
        mean_gap = requests[-1].arrival_s / len(requests)
        assert mean_gap == pytest.approx(0.01, rel=0.3)

    def test_budget_fractions(self):
        profile = LoadProfile(n_requests=4000, deadline_fraction=1.0,
                              joule_cap_fraction=0.0)
        requests = generate_requests(profile, random_state=1)
        assert all(r.budget.deadline_s is not None for r in requests)
        assert all(r.budget.max_joules is None for r in requests)

    def test_feature_rows_come_from_the_pool(self):
        pool = np.arange(40, dtype=float).reshape(10, 4)
        profile = LoadProfile(n_requests=50)
        requests = generate_requests(profile, X_pool=pool,
                                     random_state=2)
        for r in requests:
            assert r.X.shape == (r.n_rows, 4)
            # every sampled row must be one of the pool's rows
            assert all(any(np.array_equal(row, p) for p in pool)
                       for row in r.X)


class TestBenchReport:
    def test_loadtest_bit_identical_per_seed(self):
        profile = LoadProfile(n_requests=1500)
        a, _ = run_loadtest(stub_variants(), profile, seed=9)
        b, _ = run_loadtest(stub_variants(), profile, seed=9)
        assert a.to_json() == b.to_json()
        c, _ = run_loadtest(stub_variants(), profile, seed=10)
        assert a.to_json() != c.to_json()

    def test_report_counts_are_consistent(self):
        profile = LoadProfile(n_requests=1000)
        report, responses = run_loadtest(stub_variants(), profile,
                                         seed=4)
        assert report.n_requests == 1000
        assert report.n_ok + report.n_timeout + report.n_rejected == 1000
        assert report.rows_served == sum(
            r.n_rows for r in responses if r.status != "rejected")
        assert sum(report.variant_mix.values()) \
            == report.n_ok + report.n_timeout
        assert report.latency_p50_s <= report.latency_p95_s \
            <= report.latency_p99_s

    def test_router_switches_under_tightened_target(self):
        variants = stub_variants()
        ensemble_j = variants["ensemble"].manifest.joules_per_prediction
        refit_j = variants["refit"].manifest.joules_per_prediction
        profile = LoadProfile(n_requests=800, joule_cap_fraction=0.0)
        relaxed, _ = run_loadtest(variants, profile, seed=3)
        tight, _ = run_loadtest(
            variants, profile, seed=3,
            target_j_per_pred=(ensemble_j + refit_j) / 2)
        assert set(relaxed.variant_mix) == {"ensemble"}
        assert set(tight.variant_mix) == {"refit"}
        assert tight.joules_per_prediction \
            < relaxed.joules_per_prediction
        assert tight.slo_miss_rate == 0.0

    def test_report_json_round_trips(self, tmp_path):
        profile = LoadProfile(n_requests=200)
        report, _ = run_loadtest(stub_variants(), profile, seed=1)
        path = report.write(tmp_path / "BENCH_serving.json")
        payload = json.loads(path.read_text())
        assert payload == report.as_dict()
        assert list(payload) == sorted(payload)

    def test_empty_stream_summary(self):
        router_only, _ = run_loadtest(
            stub_variants(), LoadProfile(n_requests=1), seed=0)
        empty = summarise_responses(
            [], seed=0, n_batches=0,
            router=__import__("repro.serving", fromlist=["SLORouter"])
            .SLORouter(stub_variants()))
        assert isinstance(empty, ServingBenchReport)
        assert empty.rows_per_s == 0.0
        assert empty.slo_miss_rate == 0.0


class TestEndToEnd:
    def test_real_artifacts_loadtest(self, caml_setup):
        artifacts, dropped, ds, _store = caml_setup
        assert not dropped
        profile = LoadProfile(n_requests=1000)
        report, responses = run_loadtest(
            artifacts, profile, seed=7, X_pool=ds.X_test)
        assert report.n_ok == 1000
        assert report.joules_per_prediction > 0
        assert all(r.predictions is not None for r in responses
                   if r.status == "ok")

    def test_real_router_switching(self, caml_setup):
        artifacts, _, ds, _store = caml_setup
        costs = sorted(a.manifest.joules_per_prediction
                       for a in artifacts.values())
        assert costs[0] < costs[-1], "variants must differ in cost"
        profile = LoadProfile(n_requests=500, joule_cap_fraction=0.0)
        relaxed, _ = run_loadtest(artifacts, profile, seed=2)
        tight, _ = run_loadtest(artifacts, profile, seed=2,
                                target_j_per_pred=(costs[0] + costs[-1])
                                / 2)
        assert relaxed.variant_mix != tight.variant_mix


class TestServingChaos:
    def test_all_invariants_hold(self, tmp_path):
        report = run_serving_chaos(11, tmp_path, n_requests=600)
        assert report.subsystem == "serving"
        assert report.ok, report.render()
        names = [c.name for c in report.checks]
        assert "every-request-answered" in names
        assert "artifact-corruption-detected" in names
        assert "deterministic-replay" in names

    def test_render_mentions_requests(self, tmp_path):
        report = run_serving_chaos(4, tmp_path, n_requests=400)
        assert "serving chaos" in report.render()
        assert "request" in report.render()


class TestCli:
    def test_serve_then_loadtest_reuses_store(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["serve", "--store", store, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "deployment variant(s)" in out
        assert "ensemble" in out

        bench = tmp_path / "BENCH_serving.json"
        args = ["loadtest", "--store", store, "--seed", "7",
                "--requests", "400", "--out", str(bench)]
        assert main(args) == 0
        first = bench.read_bytes()
        assert main(args) == 0
        assert bench.read_bytes() == first
        payload = json.loads(first)
        assert payload["n_requests"] == 400

    def test_chaos_serving_cli(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--serving", "--seeds", "5",
                     "--requests", "300"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serving chaos seed 5" in out
        assert "chaos OK" in out

"""Pickle-able stub models + artifacts for the serving test suite.

Real artifact exports (CAML → ensemble/refit/distilled) are covered by
the end-to-end tests; these stubs make per-variant cost and accuracy
*controllable*, so router and server behaviour can be asserted exactly.
"""

import numpy as np

from repro.serving.artifacts import ArtifactManifest, LoadedArtifact


class StubModel:
    """Constant-ish predictor with a tunable analytic cost."""

    def __init__(self, flops_per_row=1e6, label=0):
        self.flops_per_row = float(flops_per_row)
        self.label = int(label)
        self.classes_ = np.array([0, 1])

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        return np.where(X[:, 0] > 0, self.label, 1 - self.label)

    def predict_proba(self, X):
        pred = self.predict(X)
        proba = np.zeros((len(pred), 2))
        proba[np.arange(len(pred)), pred] = 1.0
        return proba

    def inference_flops(self, n_samples):
        return self.flops_per_row * n_samples


def stub_artifact(variant, *, accuracy, kwh_per_instance,
                  flops_per_row=1e6):
    """A LoadedArtifact with exact accuracy and routing cost."""
    model = StubModel(flops_per_row=flops_per_row)
    manifest = ArtifactManifest(
        artifact_id=f"stub-{variant}",
        format_version=1,
        system="Stub",
        variant=variant,
        dataset_fingerprint="feedfeedfeedfeed",
        config_digest="",
        accuracy=float(accuracy),
        inference_kwh_per_instance=float(kwh_per_instance),
        n_members=1,
        payload_digest="0" * 64,
        n_bytes=0,
    )
    return LoadedArtifact(model, manifest)


def stub_variants():
    """The canonical 3-variant table: accuracy strictly decreasing,
    joules/prediction strictly decreasing (ensemble dearest)."""
    return {
        "ensemble": stub_artifact(
            "ensemble", accuracy=0.90, kwh_per_instance=1e-8,
            flops_per_row=3e6),
        "refit": stub_artifact(
            "refit", accuracy=0.87, kwh_per_instance=3e-9,
            flops_per_row=1e6),
        "distilled": stub_artifact(
            "distilled", accuracy=0.84, kwh_per_instance=1e-9,
            flops_per_row=3e5),
    }

"""Artifact store: round-trip fidelity, content addressing, graceful
corruption handling, and the campaign-winner export path."""

import json
import warnings

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.faults import (
    SEAM_ARTIFACT_CORRUPT,
    FaultInjector,
    FaultPlan,
    SeamSpec,
)
from repro.serving import (
    ArtifactManifest,
    ArtifactStore,
    compute_artifact_id,
    export_system,
)
from repro.systems import make_system

from tests.serving_stubs import StubModel


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def _save_stub(store, variant="ensemble", **kw):
    return store.save(
        StubModel(), system="Stub", variant=variant,
        dataset_fingerprint="cafe0123cafe0123",
        accuracy=0.9, **kw,
    )


class TestRoundTrip:
    def test_predictions_bit_identical_after_reload(self, store):
        model = StubModel(label=1)
        manifest = store.save(
            model, system="Stub", variant="ensemble",
            dataset_fingerprint="cafe0123cafe0123", accuracy=0.9,
        )
        loaded = store.load(manifest.artifact_id)
        X = np.linspace(-1, 1, 40).reshape(10, 4)
        assert np.array_equal(loaded.predict(X), model.predict(X))
        assert np.array_equal(loaded.predict_proba(X),
                              model.predict_proba(X))
        assert loaded.inference_flops(7) == model.inference_flops(7)
        assert np.array_equal(loaded.classes_, model.classes_)

    def test_manifest_fields_survive(self, store):
        manifest = _save_stub(store, extra={"dataset": "credit-g"})
        loaded = store.load(manifest.artifact_id)
        assert loaded.manifest == manifest
        assert loaded.manifest.extra == {"dataset": "credit-g"}
        assert loaded.manifest.n_bytes > 0

    def test_manifest_dict_round_trip(self, store):
        manifest = _save_stub(store)
        clone = ArtifactManifest.from_dict(
            json.loads(json.dumps(manifest.as_dict()))
        )
        assert clone == manifest

    def test_joules_per_prediction_is_kwh_scaled(self, store):
        manifest = _save_stub(store, inference_kwh_per_instance=2e-9)
        assert manifest.joules_per_prediction == pytest.approx(
            2e-9 * 3_600_000.0)

    def test_default_cost_comes_from_cost_model(self, store):
        manifest = _save_stub(store)
        assert manifest.inference_kwh_per_instance > 0


class TestContentAddressing:
    def test_same_identity_same_id(self):
        a = compute_artifact_id("S", "v", "fp", "cfg", "digest")
        assert a == compute_artifact_id("S", "v", "fp", "cfg", "digest")
        assert a != compute_artifact_id("S", "v", "fp", "cfg", "other")
        assert a != compute_artifact_id("S", "w", "fp", "cfg", "digest")

    def test_resave_reuses_the_id(self, store):
        first = _save_stub(store)
        second = _save_stub(store)
        assert first.artifact_id == second.artifact_id
        assert len(store) == 1

    def test_sharded_layout(self, store):
        manifest = _save_stub(store)
        shard = store.root / manifest.artifact_id[:2]
        assert (shard / f"{manifest.artifact_id}.pkl").exists()
        assert (shard / f"{manifest.artifact_id}.json").exists()


class TestCorruption:
    def test_garbled_payload_reads_as_miss(self, store):
        manifest = _save_stub(store)
        pkl = (store.root / manifest.artifact_id[:2]
               / f"{manifest.artifact_id}.pkl")
        pkl.write_bytes(b"garbage" + pkl.read_bytes()[7:])
        with pytest.warns(UserWarning, match="digest"):
            assert store.load(manifest.artifact_id) is None
        assert store.stats()["corrupt"] == 1

    def test_garbled_manifest_reads_as_miss(self, store):
        manifest = _save_stub(store)
        meta = (store.root / manifest.artifact_id[:2]
                / f"{manifest.artifact_id}.json")
        meta.write_text("{not json")
        with pytest.warns(UserWarning, match="manifest"):
            assert store.load(manifest.artifact_id) is None

    def test_missing_artifact_is_counted_not_raised(self, store):
        assert store.load("no-such-artifact") is None
        assert store.stats()["missing"] == 1

    def test_future_format_version_refused(self, store):
        manifest = _save_stub(store)
        meta = (store.root / manifest.artifact_id[:2]
                / f"{manifest.artifact_id}.json")
        payload = json.loads(meta.read_text())
        payload["format_version"] = 99
        meta.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="format"):
            assert store.load(manifest.artifact_id) is None

    def test_injected_corruption_caught_by_digest(self, tmp_path):
        plan = FaultPlan(seed=5, seams={
            SEAM_ARTIFACT_CORRUPT: SeamSpec(rate=1.0),
        })
        store = ArtifactStore(tmp_path / "chaos",
                              fault_injector=FaultInjector(plan))
        manifest = _save_stub(store)
        with pytest.warns(UserWarning, match="digest"):
            assert store.load(manifest.artifact_id) is None
        assert store.stats()["corrupt"] == 1


class TestEnumeration:
    def test_find_filters(self, store):
        _save_stub(store, variant="ensemble")
        _save_stub(store, variant="distilled")
        assert len(store.manifests()) == 2
        assert [m.variant for m in store.find(variant="distilled")] \
            == ["distilled"]
        assert store.find(system="Other") == []
        assert len(store.find(
            dataset_fingerprint="cafe0123cafe0123")) == 2

    def test_manifests_sorted_by_id(self, store):
        _save_stub(store, variant="a")
        _save_stub(store, variant="b")
        ids = [m.artifact_id for m in store.manifests()]
        assert ids == sorted(ids)


class TestExportSystem:
    def test_export_caml_variants(self, tmp_path):
        ds = load_dataset("credit-g")
        system = make_system("CAML", random_state=0, time_scale=0.01)
        system.fit(ds.X_train, ds.y_train, budget_s=10.0,
                   categorical_mask=ds.categorical_mask)
        store = ArtifactStore(tmp_path / "export")
        manifests = export_system(store, system, ds, random_state=0)
        assert "ensemble" in manifests
        assert len(manifests) >= 2
        for variant, manifest in manifests.items():
            assert manifest.system == "CAML"
            assert manifest.variant == variant
            assert manifest.dataset_fingerprint == ds.fingerprint()
            assert 0.0 <= manifest.accuracy <= 1.0
            assert manifest.inference_kwh_per_instance > 0
            assert manifest.extra["dataset"] == "credit-g"
            loaded = store.load(manifest.artifact_id)
            assert loaded is not None
            preds = loaded.predict(ds.X_test)
            assert len(preds) == len(ds.y_test)

    def test_exported_ensemble_predicts_like_the_system(self, tmp_path):
        ds = load_dataset("credit-g")
        system = make_system("CAML", random_state=0, time_scale=0.01)
        system.fit(ds.X_train, ds.y_train, budget_s=10.0,
                   categorical_mask=ds.categorical_mask)
        store = ArtifactStore(tmp_path / "export")
        manifests = export_system(store, system, ds, random_state=0)
        loaded = store.load(manifests["ensemble"].artifact_id)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert np.array_equal(loaded.predict(ds.X_test),
                                  system.predict(ds.X_test))

"""The fault-injection subsystem: plans, injectors, failure taxonomy,
and the per-layer seams (cache, journal, energy, systems, runner)."""

import json
import warnings
from dataclasses import asdict

import pytest

from repro.datasets import load_dataset
from repro.energy.tracker import EnergyTracker, ZERO_REPORT
from repro.exceptions import InjectedFault, RaplUnavailableError
from repro.experiments import run_single
from repro.experiments.results import RunRecord
from repro.faults import (
    KNOWN_SEAMS,
    SEAM_CACHE_CORRUPT,
    SEAM_CELL_ERROR,
    SEAM_JOURNAL_TORN,
    SEAM_RAPL_READ,
    SEAM_TRIAL_ERROR,
    FailureRecord,
    FaultInjector,
    FaultPlan,
    SeamSpec,
)
from repro.runtime import CampaignJournal, ResultCache
from repro.systems.base import PipelineEvaluator


def _record(**overrides) -> RunRecord:
    payload = dict(
        system="CAML", dataset="kc1", configured_seconds=10.0, seed=0,
        balanced_accuracy=0.5, execution_kwh=1e-6, actual_seconds=10.0,
        inference_kwh_per_instance=1e-12,
        inference_seconds_per_instance=1e-6,
    )
    payload.update(overrides)
    return RunRecord(**payload)


class TestFaultPlan:
    def test_decisions_are_deterministic_and_order_independent(self):
        plan = FaultPlan.uniform(7, KNOWN_SEAMS, 0.3)
        again = FaultPlan.uniform(7, KNOWN_SEAMS, 0.3)
        keys = [f"cell-{i}#a0" for i in range(200)]
        forward = [(s, k) for k in keys for s in KNOWN_SEAMS
                   if plan.decide(s, k)]
        backward = [(s, k) for k in reversed(keys) for s in KNOWN_SEAMS
                    if again.decide(s, k)]
        assert sorted(forward) == sorted(backward)
        assert forward  # 0.3 over 200 keys must fire

    def test_different_seeds_differ(self):
        keys = [f"k{i}" for i in range(100)]
        a = FaultPlan.uniform(0, (SEAM_CELL_ERROR,), 0.3)
        b = FaultPlan.uniform(1, (SEAM_CELL_ERROR,), 0.3)
        assert [a.decide(SEAM_CELL_ERROR, k) for k in keys] \
            != [b.decide(SEAM_CELL_ERROR, k) for k in keys]

    def test_json_roundtrip_preserves_decisions(self):
        plan = FaultPlan.uniform(11, KNOWN_SEAMS, 0.25, delay_s=1.5)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        for key in (f"x{i}" for i in range(50)):
            for seam in KNOWN_SEAMS:
                assert clone.decide(seam, key) == plan.decide(seam, key)
        # and the dict survives a JSON round trip unchanged
        assert json.loads(plan.to_json()) == plan.to_dict()

    def test_unknown_seam_never_fires(self):
        plan = FaultPlan.uniform(0, (SEAM_CELL_ERROR,), 1.0)
        assert not plan.decide("no_such_seam", "k")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SeamSpec(rate=1.5)
        with pytest.raises(ValueError):
            SeamSpec(rate=0.5, mode="sometimes")
        with pytest.raises(ValueError):
            SeamSpec(rate=0.5, burst_len=0)
        with pytest.raises(ValueError):
            SeamSpec(rate=0.5, delay_s=-1.0)


class TestFaultInjector:
    def test_one_shot_fires_once(self):
        plan = FaultPlan(seed=0, seams={
            SEAM_CELL_ERROR: SeamSpec(rate=1.0, mode="one_shot"),
        })
        injector = FaultInjector(plan)
        fired = [injector.fire(SEAM_CELL_ERROR, f"k{i}") for i in range(5)]
        assert fired == [True, False, False, False, False]

    def test_burst_fires_consecutively(self):
        plan = FaultPlan(seed=0, seams={
            SEAM_CELL_ERROR: SeamSpec(rate=1.0, mode="burst", burst_len=3),
        })
        injector = FaultInjector(plan)
        assert all(injector.fire(SEAM_CELL_ERROR, f"k{i}")
                   for i in range(3))

    def test_max_faults_caps_total(self):
        plan = FaultPlan(seed=0, seams={
            SEAM_CELL_ERROR: SeamSpec(rate=1.0, max_faults=2),
        })
        injector = FaultInjector(plan)
        fired = [injector.fire(SEAM_CELL_ERROR, f"k{i}") for i in range(5)]
        assert sum(fired) == 2
        assert injector.fired_counts() == {SEAM_CELL_ERROR: 2}

    def test_inject_raises_and_corrupt_garbles(self):
        plan = FaultPlan.uniform(0, (SEAM_CELL_ERROR, SEAM_CACHE_CORRUPT),
                                 1.0)
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.inject(SEAM_CELL_ERROR, "k")
        garbled = injector.corrupt(SEAM_CACHE_CORRUPT, "k", '{"a": 1}')
        with pytest.raises(json.JSONDecodeError):
            json.loads(garbled)

    def test_ledger_records_every_fire(self):
        plan = FaultPlan.uniform(0, (SEAM_CELL_ERROR,), 1.0)
        injector = FaultInjector(plan)
        injector.fire(SEAM_CELL_ERROR, "a")
        injector.fire(SEAM_CELL_ERROR, "b")
        assert injector.event_keys() == [
            (SEAM_CELL_ERROR, "a"), (SEAM_CELL_ERROR, "b"),
        ]


class TestFailureRecord:
    def test_from_exception(self):
        record = FailureRecord.from_exception(
            ValueError("boom"), seam="cell", attempt=2,
        )
        assert record.error_type == "ValueError"
        assert record.message == "boom"
        assert not record.injected

    def test_injected_flag_inferred(self):
        record = FailureRecord.from_exception(
            InjectedFault("chaos"), seam="cell",
        )
        assert record.injected

    def test_from_error_text_parses_traceback_tail(self):
        text = ("Traceback (most recent call last):\n"
                '  File "x.py", line 1, in f\n'
                "KeyError: 'missing'\n")
        record = FailureRecord.from_error_text(text, seam="cell", attempt=1)
        assert record.error_type == "KeyError"
        assert "missing" in record.message

    def test_from_error_text_empty_is_unknown(self):
        record = FailureRecord.from_error_text("", seam="cell")
        assert record.message == "unknown error"

    def test_message_is_truncated(self):
        record = FailureRecord("E", "cell", 1, "x" * 1000)
        assert len(record.message) <= 200

    def test_note_roundtrip_is_structured(self):
        record = FailureRecord("ValueError", "timeout", 3, "too slow")
        note = record.to_note(3)
        assert "quarantined after 3 attempt(s)" in note
        assert FailureRecord.is_structured_note(note)
        assert not FailureRecord.is_structured_note(
            "quarantined after 3 attempt(s): something went wrong"
        )

    def test_dict_roundtrip(self):
        record = FailureRecord("E", "pool", 2, "died", injected=True)
        assert FailureRecord.from_dict(record.as_dict()) == record


class TestCacheCorruptionSeam:
    def test_injected_corruption_detected_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.fault_injector = FaultInjector(
            FaultPlan.uniform(0, (SEAM_CACHE_CORRUPT,), 1.0)
        )
        cache.put("ab" + "0" * 62, _record())
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            assert cache.get("ab" + "0" * 62) is None
        assert cache.stats.corrupt_entries == 1
        assert cache.stats.corrupt == 1

    def test_unarmed_cache_roundtrips(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cd" + "0" * 62, _record())
        assert cache.get("cd" + "0" * 62) == _record()
        assert cache.stats.corrupt_entries == 0


class TestJournalSeams:
    def test_torn_lines_are_injected_and_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, fault_injector=FaultInjector(
            FaultPlan.uniform(0, (SEAM_JOURNAL_TORN,), 1.0)
        ))
        with journal:
            journal.open_campaign(2, fault_plan={"seed": 0, "seams": {}})
            journal.record_cell(0, "k0", _record())
            journal.record_cell(1, "k1", _record())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            state = CampaignJournal.load(path)
        # the header is exempt (it carries the plan); every cell line tore
        assert state.fault_plan == {"seed": 0, "seams": {}}
        assert state.completed == {}
        assert state.skipped_lines >= 1

    def test_durable_knob(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl", durable=False)
        assert journal.durable is False
        with journal:
            journal.open_campaign(1)
            journal.record_cell(0, "k0", _record())
        state = CampaignJournal.load(tmp_path / "j.jsonl")
        assert len(state.completed) == 1

    def test_legacy_error_string_failures_replay_structured(self, tmp_path):
        path = tmp_path / "j.jsonl"
        # a journal written before the taxonomy existed: failure events
        # carry only the raw error text
        path.write_text(
            json.dumps({"type": "campaign", "n_cells": 1}) + "\n"
            + json.dumps({
                "type": "failure", "index": 0, "key": "k0", "attempt": 1,
                "error": "Traceback ...\nRuntimeError: legacy boom",
            }) + "\n"
        )
        state = CampaignJournal.load(path)
        records = state.failure_records()
        assert len(records) == 1
        assert records[0].error_type == "RuntimeError"
        assert records[0].message == "legacy boom"

    def test_record_failure_writes_both_forms(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_failure(0, "k0", 1, failure=FailureRecord(
                "ValueError", "cell", 1, "boom",
            ))
        event = [json.loads(line) for line in
                 path.read_text().splitlines()][0]
        assert event["failure"]["error_type"] == "ValueError"
        assert "ValueError" in event["error"]


class TestRaplDegradation:
    def test_tracker_degrades_to_estimate(self):
        def hook():
            raise RaplUnavailableError("counter gone")

        tracker = EnergyTracker(fault_hook=hook)
        tracker.start()
        report = tracker.stop()
        assert report.source == "estimated"
        assert report.kwh > 0.0   # never zero: the region still burned

    def test_healthy_tracker_reports_rapl(self):
        tracker = EnergyTracker()
        tracker.start()
        report = tracker.stop()
        assert report.source == "rapl"

    def test_estimated_contribution_taints_sums(self):
        def hook():
            raise RaplUnavailableError("gone")

        tracker = EnergyTracker(fault_hook=hook)
        tracker.start()
        estimated = tracker.stop()
        assert (ZERO_REPORT + estimated).source == "estimated"
        assert (ZERO_REPORT + ZERO_REPORT).source == "rapl"

    def test_run_single_tags_energy_source(self):
        dataset = load_dataset("kc1")
        clean = run_single("CAML", dataset, 10.0, seed=0, time_scale=0.004)
        assert clean.energy_source == "measured"

        def hook():
            raise RaplUnavailableError("counter gone")

        degraded = run_single(
            "CAML", dataset, 10.0, seed=0, time_scale=0.004,
            energy_meter=EnergyTracker(fault_hook=hook),
        )
        assert degraded.energy_source == "estimated"
        # degradation flags the record; the deterministic numbers hold
        assert degraded.execution_kwh == clean.execution_kwh
        assert degraded.execution_kwh > 0.0
        masked = {k: v for k, v in asdict(degraded).items()
                  if k != "energy_source"}
        assert masked == {k: v for k, v in asdict(clean).items()
                          if k != "energy_source"}


class TestTrialSandbox:
    def test_sandbox_records_structured_failure(self, binary_data):
        X, y = binary_data
        ev = PipelineEvaluator(X, y, random_state=0, sandbox=True)
        score, model = ev.evaluate_config({"classifier": "no-such-model"})
        assert (score, model) == (-1.0, None)
        assert len(ev.failures) == 1
        assert ev.failures[0].seam == SEAM_TRIAL_ERROR
        assert ev.failures[0].error_type
        assert ev.n_evaluations == 1   # the crash is charged, not hidden

    def test_sandbox_charges_budget(self, binary_data):
        from repro.systems.base import Deadline

        X, y = binary_data
        deadline = Deadline(100.0)
        ev = PipelineEvaluator(X, y, random_state=0, sandbox=True,
                               deadline=deadline)
        ev.evaluate_config({"classifier": "no-such-model"})
        assert deadline.elapsed() > 0.0   # crashed but still paid for

    def test_fault_hook_injects_trial_errors(self, binary_data):
        X, y = binary_data
        injector = FaultInjector(
            FaultPlan.uniform(0, (SEAM_TRIAL_ERROR,), 1.0)
        )
        calls = iter(range(100))
        ev = PipelineEvaluator(
            X, y, random_state=0, sandbox=True,
            fault_hook=lambda: injector.inject(
                SEAM_TRIAL_ERROR, f"t{next(calls)}"
            ),
        )
        score, model = ev.evaluate_config({"classifier": "gaussian_nb"})
        assert (score, model) == (-1.0, None)
        assert ev.failures[0].injected

    def test_without_sandbox_exceptions_escape(self, binary_data):
        X, y = binary_data
        ev = PipelineEvaluator(X, y, random_state=0)
        with pytest.raises(Exception):
            ev.evaluate_config({"classifier": "no-such-model"})
        assert ev.failures == []

"""The repro invariant checker (GRN001-GRN006).

Each rule gets a violating fixture (fires) and a conforming one (stays
silent), plus inline-waiver and baseline coverage; the self-lint test at
the bottom holds the real tree to the same standard.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LintEngine,
    lint_paths,
    load_baseline,
    partition,
    render_json,
    render_text,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, relpath: str, source: str, extra=None):
    """Write ``source`` at ``relpath`` inside a synthetic package tree
    (``__init__.py`` created for every ``repro``-rooted directory) and
    lint the whole tree."""
    files = {relpath: source, **(extra or {})}
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
        if rel.startswith("repro/"):
            package_dir = tmp_path / "repro"
            (package_dir / "__init__.py").touch()
            for part in Path(rel).parent.parts[1:]:
                package_dir = package_dir / part
                (package_dir / "__init__.py").touch()
    return LintEngine(root=tmp_path).run([tmp_path])


def codes(result) -> list[str]:
    return [f.code for f in result.findings]


# -- GRN001: numpy-only imports ------------------------------------------------
class TestForbiddenImports:
    def test_fires_on_third_party_import(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/foo.py",
            "import pandas\nfrom sklearn.tree import DecisionTree\n",
        )
        grn1 = [f for f in result.findings if f.code == "GRN001"]
        assert len(grn1) == 2
        assert "'pandas'" in grn1[0].message
        assert "'sklearn'" in grn1[1].message
        assert grn1[0].line == 1

    def test_silent_on_stdlib_numpy_and_repro(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/foo.py",
            "import json\nimport numpy as np\n"
            "from repro.utils.rng import check_random_state\n",
        )
        assert "GRN001" not in codes(result)

    def test_ignores_files_outside_the_repro_package(self, tmp_path):
        result = lint_snippet(
            tmp_path, "benchmarks/bench_foo.py", "import matplotlib\n",
        )
        assert "GRN001" not in codes(result)


# -- GRN002: layer DAG ---------------------------------------------------------
class TestLayering:
    def test_fires_on_upward_import(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/utils/helper.py",
            "from repro.systems.base import AutoMLSystem\n",
        )
        grn2 = [f for f in result.findings if f.code == "GRN002"]
        assert len(grn2) == 1
        assert "upward" in grn2[0].message

    def test_fires_on_sibling_import(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/ensemble/foo.py",
            "from repro.hpo.bo import BayesianOptimizer\n",
        )
        grn2 = [f for f in result.findings if f.code == "GRN002"]
        assert len(grn2) == 1
        assert "sibling" in grn2[0].message

    def test_resolves_relative_imports(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/sub.py",
            "from ..systems import base\n",
        )
        assert "GRN002" in codes(result)

    def test_silent_on_downward_and_same_package(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/systems/foo.py",
            "from repro.models.tree import DecisionTreeClassifier\n"
            "from repro.systems.base import AutoMLSystem\n"
            "from repro.utils.rng import check_random_state\n",
        )
        assert "GRN002" not in codes(result)

    def test_allowed_same_rank_edges(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/preprocessing/foo.py",
            "from repro.models.base import BaseEstimator\n",
        )
        assert "GRN002" not in codes(result)

    def test_unassigned_package_is_itself_a_finding(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/mystery/foo.py", "import json\n",
        )
        grn2 = [f for f in result.findings if f.code == "GRN002"]
        assert grn2 and "no layer assignment" in grn2[0].message


# -- GRN003: no global RNG -----------------------------------------------------
class TestGlobalRng:
    @pytest.mark.parametrize("source", [
        "import numpy as np\nnp.random.seed(0)\n",
        "import numpy as np\nx = np.random.rand(3)\n",
        "import random\n",
        "from random import choice\n",
        "from numpy.random import randint\n",
    ])
    def test_fires_on_global_state(self, tmp_path, source):
        result = lint_snippet(tmp_path, "repro/models/foo.py", source)
        assert "GRN003" in codes(result)

    def test_silent_on_generator_plumbing(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/foo.py",
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "ok = isinstance(rng, np.random.Generator)\n"
            "legacy = np.random.RandomState\n",
        )
        assert "GRN003" not in codes(result)

    def test_rng_module_is_exempt(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/utils/rng.py",
            "import numpy as np\nnp.random.seed(0)\n",
        )
        assert "GRN003" not in codes(result)


# -- GRN004: no wall clock -----------------------------------------------------
class TestWallClock:
    @pytest.mark.parametrize("source", [
        "import time\nt = time.time()\n",
        "import time\nt = time.monotonic()\n",
        "import time\ntime.sleep(1)\n",
        "from time import perf_counter\nt = perf_counter()\n",
        "from datetime import datetime\nts = datetime.now()\n",
        "import datetime\nts = datetime.datetime.utcnow()\n",
    ])
    def test_fires_on_wall_clock_calls(self, tmp_path, source):
        result = lint_snippet(tmp_path, "repro/hpo/foo.py", source)
        assert "GRN004" in codes(result)

    def test_silent_on_injectable_default_reference(self, tmp_path):
        # referencing time.monotonic as a default is the sanctioned
        # injection idiom — only *calls* read the clock
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\n"
            "def track(clock=time.monotonic):\n"
            "    return clock()\n",
        )
        assert "GRN004" not in codes(result)

    def test_silent_on_tz_aware_now(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "from datetime import datetime, timezone\n"
            "ts = datetime.now(timezone.utc)\n",
        )
        assert "GRN004" not in codes(result)

    def test_measurement_modules_are_allowlisted(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/utils/timer.py",
            "import time\nt = time.monotonic()\n",
        )
        assert "GRN004" not in codes(result)


# -- GRN005: estimator contract ------------------------------------------------
class TestEstimatorContract:
    def test_fires_on_fit_without_predict_or_transform(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/custom.py",
            "class Broken:\n"
            "    def fit(self, X, y):\n"
            "        return self\n"
            "    def get_params(self):\n"
            "        return {}\n"
            "    def set_params(self, **p):\n"
            "        return self\n",
        )
        grn5 = [f for f in result.findings if f.code == "GRN005"]
        assert len(grn5) == 1
        assert "neither predict() nor transform()" in grn5[0].message

    def test_fires_on_missing_param_introspection(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/custom.py",
            "class NoParams:\n"
            "    def fit(self, X, y):\n"
            "        return self\n"
            "    def predict(self, X):\n"
            "        return X\n",
        )
        messages = [f.message for f in result.findings
                    if f.code == "GRN005"]
        assert any("get_params" in m for m in messages)
        assert any("set_params" in m for m in messages)

    def test_fires_on_randomness_without_random_state(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/custom.py",
            "from repro.utils.rng import check_random_state\n"
            "class Unseeded:\n"
            "    def __init__(self, k=3):\n"
            "        self.k = k\n"
            "    def fit(self, X, y):\n"
            "        rng = check_random_state(None)\n"
            "        return self\n"
            "    def predict(self, X):\n"
            "        return X\n"
            "    def get_params(self):\n"
            "        return {}\n"
            "    def set_params(self, **p):\n"
            "        return self\n",
        )
        grn5 = [f for f in result.findings if f.code == "GRN005"]
        assert len(grn5) == 1
        assert "random_state" in grn5[0].message

    def test_contract_resolves_inheritance_across_files(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/custom.py",
            "from repro.models.base import BaseEstimator, ClassifierMixin\n"
            "from repro.utils.rng import check_random_state\n"
            "class Fine(BaseEstimator, ClassifierMixin):\n"
            "    def __init__(self, random_state=None):\n"
            "        self.random_state = random_state\n"
            "    def fit(self, X, y):\n"
            "        self._rng = check_random_state(self.random_state)\n"
            "        return self\n",
            extra={"repro/models/base.py": (
                "class BaseEstimator:\n"
                "    def get_params(self):\n"
                "        return {}\n"
                "    def set_params(self, **p):\n"
                "        return self\n"
                "class ClassifierMixin:\n"
                "    def predict(self, X):\n"
                "        return X\n"
            )},
        )
        assert "GRN005" not in codes(result)

    def test_private_helpers_are_exempt(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/models/custom.py",
            "class _Node:\n"
            "    def fit(self, X, y):\n"
            "        return self\n",
        )
        assert "GRN005" not in codes(result)


# -- GRN006: hygiene -----------------------------------------------------------
class TestHygiene:
    def test_fires_on_mutable_default(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/utils/foo.py",
            "def collect(items=[]):\n    return items\n",
        )
        grn6 = [f for f in result.findings if f.code == "GRN006"]
        assert len(grn6) == 1
        assert "mutable default" in grn6[0].message

    def test_fires_on_swallowing_handlers(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/utils/foo.py",
            "def run(f):\n"
            "    try:\n"
            "        f()\n"
            "    except Exception:\n"
            "        pass\n"
            "    try:\n"
            "        f()\n"
            "    except:\n"
            "        pass\n",
        )
        grn6 = [f for f in result.findings if f.code == "GRN006"]
        assert len(grn6) == 2

    def test_silent_on_handled_exceptions(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/utils/foo.py",
            "def run(f, y=None):\n"
            "    try:\n"
            "        return f()\n"
            "    except Exception:\n"
            "        return -1.0\n"
            "def g(x=(1, 2)):\n"
            "    return x\n",
        )
        assert "GRN006" not in codes(result)


# -- waivers -------------------------------------------------------------------
class TestWaivers:
    def test_inline_waiver_silences_one_line(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\n"
            "a = time.time()  # repro-lint: disable=GRN004\n"
            "b = time.time()\n",
        )
        grn4 = [f for f in result.findings if f.code == "GRN004"]
        assert len(grn4) == 1 and grn4[0].line == 3
        assert result.waived == 1

    def test_file_waiver_silences_whole_file(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "# repro-lint: disable-file=GRN004\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n",
        )
        assert "GRN004" not in codes(result)
        assert result.waived == 2

    def test_waiver_only_silences_named_codes(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\n"
            "a = time.time()  # repro-lint: disable=GRN003\n",
        )
        assert "GRN004" in codes(result)


# -- baseline ------------------------------------------------------------------
class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\na = time.time()\n",
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.findings)
        new, old = partition(result.findings,
                             load_baseline(baseline_path))
        assert new == [] and len(old) == 1

    def test_multiset_semantics_catch_a_fresh_twin(self, tmp_path):
        one = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\na = time.time()\n",
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, one.findings)
        two = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\na = time.time()\nb = time.time()\n",
        )
        new, old = partition(two.findings, load_baseline(baseline_path))
        assert len(old) == 1 and len(new) == 1

    def test_missing_baseline_means_everything_is_new(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time\na = time.time()\n",
        )
        new, old = partition(
            result.findings, load_baseline(tmp_path / "absent.json")
        )
        assert len(new) == 1 and old == []


# -- reporters -----------------------------------------------------------------
class TestReporters:
    def _findings(self, tmp_path):
        return lint_snippet(
            tmp_path, "repro/hpo/foo.py",
            "import time, random\na = time.time()\n",
        ).findings

    def test_json_output_is_stable_and_sorted(self, tmp_path):
        findings = self._findings(tmp_path)
        first = render_json(findings, [])
        second = render_json(list(reversed(findings)), [])
        assert first == second
        payload = json.loads(first)
        keys = [(f["path"], f["line"], f["col"], f["code"])
                for f in payload["new"]]
        assert keys == sorted(keys)

    def test_text_report_carries_location_and_summary(self, tmp_path):
        findings = self._findings(tmp_path)
        text = render_text(findings, [])
        assert "repro/hpo/foo.py:2:4: GRN004" in text
        assert f"{len(findings)} new" in text

    def test_clean_report(self):
        assert "clean" in render_text([], [])


# -- syntax errors -------------------------------------------------------------
def test_syntax_error_is_reported_not_raised(tmp_path):
    result = lint_snippet(tmp_path, "repro/utils/bad.py", "def broken(:\n")
    assert codes(result) == ["GRN000"]


# -- CLI -----------------------------------------------------------------------
class TestLintCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("import json\n")
        assert main(["lint", str(target),
                     "--baseline", str(tmp_path / "b.json")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_new_findings_exit_nonzero(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        assert main(["lint", str(target),
                     "--baseline", str(tmp_path / "b.json")]) == 1
        assert "GRN004" in capsys.readouterr().out

    def test_write_baseline_then_pass(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        baseline = tmp_path / "b.json"
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main(["lint", str(target),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\na = time.time()\n")
        main(["lint", str(target), "--format", "json",
              "--baseline", str(tmp_path / "b.json")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1


# -- the point of it all: the real tree is invariant-clean --------------------
class TestSelfLint:
    def test_src_repro_has_zero_findings(self):
        result = lint_paths([REPO_ROOT / "src" / "repro"],
                            root=REPO_ROOT)
        assert result.findings == [], render_text(result.findings, [])

    def test_benchmarks_and_examples_are_clean_too(self):
        result = lint_paths(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
            root=REPO_ROOT,
        )
        assert result.findings == [], render_text(result.findings, [])

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        assert sum(baseline.values()) == 0

import time

import pytest

from repro.utils.timer import Stopwatch, VirtualClock, WallClock


def test_wall_clock_monotonic():
    clock = WallClock()
    a = clock.now()
    b = clock.now()
    assert b >= a


def test_virtual_clock_scales_time():
    clock = VirtualClock(scale=100.0)
    t0 = clock.now()
    time.sleep(0.02)
    assert clock.now() - t0 >= 1.0  # 0.02s real -> >=2 budget seconds


def test_virtual_clock_rejects_nonpositive_scale():
    with pytest.raises(ValueError):
        VirtualClock(scale=0.0)


def test_virtual_clock_advance():
    clock = VirtualClock(scale=1.0)
    before = clock.now()
    clock.advance(5.0)
    assert clock.now() - before >= 5.0


def test_virtual_clock_advance_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_stopwatch_measures_elapsed():
    with Stopwatch() as sw:
        time.sleep(0.01)
    assert sw.elapsed >= 0.005
    assert sw.cpu_elapsed >= 0.0

"""Fault-fenced shard coordinator: partition, quotas, leases, dedup."""

import warnings
from dataclasses import asdict, replace

import pytest

from repro.experiments.results import RunRecord
from repro.faults import (
    SEAM_LEASE_EXPIRE,
    SEAM_SHARD_DEATH,
    FaultPlan,
    SeamSpec,
)
from repro.runtime import (
    CampaignExecutor,
    CellSpec,
    ResultCache,
    RetryPolicy,
    ShardCoordinator,
    canonical_state_bytes,
    partition_cells,
)
from repro.runtime.executor import backoff_jitter
from repro.runtime.shard import (
    ShardPolicy,
    coordinator_path,
    estimate_cell_joules,
    segment_path,
)

#: cheap cells (sub-second each) shared across tests
FAST = dict(budget_s=10.0, seed=7, time_scale=0.004)

#: a ShardPolicy that keeps the monitor snappy in tests
QUICK = dict(batch_size=2, lease_timeout_s=1.0, poll_interval_s=0.02)


def _cells(n=6, dataset="credit-g"):
    systems = ("CAML", "FLAML", "TabPFN")
    return [
        CellSpec(system=systems[i % 3], dataset=dataset,
                 **{**FAST, "seed": 7 + 1009 * (i // 3)})
        for i in range(n)
    ]


def _serial_reference(cells, journal_path):
    from repro.runtime import CampaignJournal

    executor = CampaignExecutor(
        workers=1, journal=CampaignJournal(journal_path),
    )
    executor.run(cells)
    state = CampaignJournal.load(journal_path)
    return canonical_state_bytes(state, mask_energy_source=True)


class TestPartition:
    def test_round_robin_is_deterministic_and_complete(self):
        parts = partition_cells(range(7), 3)
        assert parts == [[0, 3, 6], [1, 4], [2, 5]]
        assert sorted(i for p in parts for i in p) == list(range(7))

    def test_single_shard_gets_everything(self):
        assert partition_cells(range(4), 1) == [[0, 1, 2, 3]]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_cells(range(4), 0)

    def test_segment_and_coordinator_paths(self, tmp_path):
        base = tmp_path / "campaign.jsonl"
        assert segment_path(base, 2).name == "campaign.shard-2.jsonl"
        assert coordinator_path(base).name == "campaign.coordinator.jsonl"


class TestQuotaEstimate:
    def test_pure_function_of_the_spec(self):
        spec = CellSpec("CAML", "credit-g", **FAST)
        assert estimate_cell_joules(spec) == estimate_cell_joules(spec)
        assert estimate_cell_joules(spec) > 0.0

    def test_monotone_in_budget_and_cores(self):
        spec = CellSpec("CAML", "credit-g", **FAST)
        bigger = replace(spec, budget_s=30.0)
        wider = replace(spec, n_cores=4)
        assert estimate_cell_joules(bigger) > estimate_cell_joules(spec)
        assert estimate_cell_joules(wider) > estimate_cell_joules(spec)


class TestCoordinatorHappyPath:
    def test_bit_identical_to_serial_and_segments_on_disk(self, tmp_path):
        cells = _cells(6)
        ref = _serial_reference(cells, tmp_path / "reference.jsonl")

        merged_path = tmp_path / "campaign.jsonl"
        with ShardCoordinator(
            shards=3, workers=1, journal_path=merged_path,
            shard_policy=ShardPolicy(**QUICK),
        ) as coordinator:
            store = coordinator.run(cells)

        assert len(store) == 6
        merged = coordinator.merged
        assert merged.fenced_commits == 0
        state_bytes = canonical_state_bytes(
            merged.state, mask_energy_source=True,
        )
        assert state_bytes == ref
        # the merged journal replays to the same state it was built from
        from repro.runtime import CampaignJournal

        replayed = CampaignJournal.load(merged_path)
        assert canonical_state_bytes(
            replayed, mask_energy_source=True,
        ) == ref
        for sid in range(3):
            assert segment_path(merged_path, sid).exists()
        assert coordinator_path(merged_path).exists()

    def test_tracker_reports_per_shard_rows(self, tmp_path):
        with ShardCoordinator(
            shards=2, workers=1,
            journal_path=tmp_path / "campaign.jsonl",
            shard_policy=ShardPolicy(**QUICK),
        ) as coordinator:
            coordinator.run(_cells(4))
        rows = coordinator.tracker.shards
        assert set(rows) == {0, 1}
        assert sum(r.done for r in rows.values()) == 4
        assert all(r.state == "done" for r in rows.values())

    def test_shared_cache_dedups_cross_shard_duplicates(self, tmp_path):
        # the same 2 specs on both shards: whoever commits second hits
        # the cache's first-write-wins path instead of re-writing
        cells = _cells(2) * 2
        cache = ResultCache(tmp_path / "cache")
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # no dedup_conflicts allowed
            with ShardCoordinator(
                shards=2, workers=1, cache=cache,
                journal_path=tmp_path / "campaign.jsonl",
                shard_policy=ShardPolicy(**QUICK),
            ) as coordinator:
                store = coordinator.run(cells)
        assert len(store) == 4
        stats = cache.stats
        assert stats.writes == 2
        assert stats.hits + stats.dedup_hits >= 2
        assert stats.dedup_conflicts == 0


class TestQuotas:
    def test_over_quota_cells_quarantine_deterministically(self, tmp_path):
        cells = _cells(4)
        one_cell = estimate_cell_joules(cells[0])
        with ShardCoordinator(
            shards=2, workers=1,
            journal_path=tmp_path / "campaign.jsonl",
            shard_policy=ShardPolicy(**QUICK),
            quotas={"default": one_cell * 2.5},
        ) as coordinator:
            store = coordinator.run(cells)

        assert len(store) == 4          # quarantined cells still resolve
        quarantined = coordinator.quarantined_quota
        assert len(quarantined) == 2    # 2.5 cell-budgets pay for 2 cells
        assert all(f.error_type == "QuotaExceeded" for f in quarantined)
        assert all(f.seam == "quota" for f in quarantined)
        failed = [r for r in store.records if r.failed]
        assert len(failed) == 2
        assert all("QuotaExceeded" in r.note for r in failed)

    def test_unlimited_tenants_are_untouched(self, tmp_path):
        with ShardCoordinator(
            shards=2, workers=1,
            journal_path=tmp_path / "campaign.jsonl",
            shard_policy=ShardPolicy(**QUICK),
            quotas={"someone-else": 0.0},
        ) as coordinator:
            store = coordinator.run(_cells(2))
        assert not coordinator.quarantined_quota
        assert not any(r.failed for r in store.records)


class TestFaultSeams:
    def test_shard_death_is_fenced_and_result_is_bit_identical(
            self, tmp_path):
        cells = _cells(8)
        ref = _serial_reference(cells, tmp_path / "reference.jsonl")
        plan = FaultPlan(seed=0, seams={
            SEAM_SHARD_DEATH: SeamSpec(rate=1.0, mode="one_shot"),
        })
        with ShardCoordinator(
            shards=3, workers=1, fault_plan=plan,
            journal_path=tmp_path / "campaign.jsonl",
            shard_policy=ShardPolicy(**QUICK),
        ) as coordinator:
            store = coordinator.run(cells)

        assert len(store) == 8
        assert coordinator.fault_counts.get(SEAM_SHARD_DEATH, 0) == 1
        assert coordinator.metrics.counter("shard.deaths").value >= 1
        assert coordinator.reassignments      # orphans were re-homed
        assert canonical_state_bytes(
            coordinator.merged.state, mask_energy_source=True,
        ) == ref

    def test_lease_expiry_resurrects_and_fences_stragglers(
            self, tmp_path):
        cells = _cells(8)
        ref = _serial_reference(cells, tmp_path / "reference.jsonl")
        plan = FaultPlan(seed=0, seams={
            SEAM_LEASE_EXPIRE: SeamSpec(rate=1.0, mode="one_shot"),
        })
        with ShardCoordinator(
            shards=2, workers=1, fault_plan=plan,
            journal_path=tmp_path / "campaign.jsonl",
            shard_policy=ShardPolicy(**QUICK),
        ) as coordinator:
            store = coordinator.run(cells)

        assert len(store) == 8
        assert coordinator.metrics.counter(
            "shard.lease_expiries").value >= 1
        assert coordinator.metrics.counter(
            "shard.resurrections").value >= 1
        assert canonical_state_bytes(
            coordinator.merged.state, mask_energy_source=True,
        ) == ref


class TestBackoffJitter:
    #: the pinned per-seed jitter streams — any change to the hash
    #: construction breaks cross-shard de-stampeding replays
    PINNED = {
        0: [0.76211940249, 0.915532116217, 0.032724787572,
            0.267095154643, 0.323579776366],
        7: [0.173932735352, 0.152430054748, 0.333242579781,
            0.0507201213, 0.111954950442],
    }

    @pytest.mark.parametrize("seed", sorted(PINNED))
    def test_jitter_sequence_is_pinned_per_seed(self, seed):
        got = [backoff_jitter(seed, draw) for draw in range(1, 6)]
        assert got == pytest.approx(self.PINNED[seed], abs=1e-12)

    def test_streams_differ_across_seeds(self):
        assert [backoff_jitter(0, d) for d in range(1, 6)] != \
            [backoff_jitter(1, d) for d in range(1, 6)]

    def test_backoff_delay_is_deterministic_and_bounded(self):
        delays = []
        for _ in range(2):
            policy = RetryPolicy(retry_backoff_s=1.0, jitter_ratio=0.5,
                                 jitter_seed=7)
            delays.append([policy.backoff_delay(n) for n in (1, 2, 3)])
        assert delays[0] == delays[1]          # same seed -> same stream
        for n, delay in zip((1, 2, 3), delays[0]):
            base = 1.0 * n
            assert base * 0.5 <= delay < base * 1.5

    def test_zero_ratio_keeps_exact_linear_backoff(self):
        policy = RetryPolicy(retry_backoff_s=0.5, jitter_ratio=0.0)
        assert [policy.backoff_delay(n) for n in (1, 2)] == [0.5, 1.0]

    def test_jitter_ratio_is_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter_ratio=1.5)


class TestCacheDedupRace:
    def test_second_put_is_dropped_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = RunRecord(
            system="CAML", dataset="credit-g", configured_seconds=10.0,
            seed=7, balanced_accuracy=0.7, execution_kwh=1e-5,
            actual_seconds=0.1, inference_kwh_per_instance=1e-12,
            inference_seconds_per_instance=1e-6,
        )
        cache.put("k", record)
        cache.put("k", record)                  # identical: silent dedup
        assert cache.stats.writes == 1
        assert cache.stats.dedup_hits == 1
        assert cache.stats.dedup_conflicts == 0
        assert asdict(cache.get("k")) == asdict(record)

    def test_conflicting_put_keeps_first_write_and_warns(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = RunRecord(
            system="CAML", dataset="credit-g", configured_seconds=10.0,
            seed=7, balanced_accuracy=0.7, execution_kwh=1e-5,
            actual_seconds=0.1, inference_kwh_per_instance=1e-12,
            inference_seconds_per_instance=1e-6,
        )
        cache.put("k", record)
        with pytest.warns(UserWarning, match="written twice"):
            cache.put("k", replace(record, balanced_accuracy=0.9))
        assert cache.stats.dedup_conflicts == 1
        assert cache.get("k").balanced_accuracy == 0.7

    def test_energy_source_divergence_is_not_a_conflict(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = RunRecord(
            system="CAML", dataset="credit-g", configured_seconds=10.0,
            seed=7, balanced_accuracy=0.7, execution_kwh=1e-5,
            actual_seconds=0.1, inference_kwh_per_instance=1e-12,
            inference_seconds_per_instance=1e-6,
            energy_source="measured",
        )
        cache.put("k", record)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put("k", replace(record, energy_source="estimated"))
        assert cache.stats.dedup_hits == 1
        assert cache.stats.dedup_conflicts == 0

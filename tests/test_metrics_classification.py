import numpy as np
import pytest

from repro.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
)


def test_accuracy_perfect():
    assert accuracy_score([0, 1, 1], [0, 1, 1]) == 1.0


def test_accuracy_half():
    assert accuracy_score([0, 0, 1, 1], [0, 1, 0, 1]) == 0.5


def test_balanced_accuracy_equals_accuracy_when_balanced():
    y = [0, 0, 1, 1]
    p = [0, 1, 0, 1]
    assert balanced_accuracy_score(y, p) == pytest.approx(accuracy_score(y, p))


def test_balanced_accuracy_handles_imbalance():
    # 9 of class 0, 1 of class 1; predicting all-zero gives bacc 0.5
    y = [0] * 9 + [1]
    p = [0] * 10
    assert balanced_accuracy_score(y, p) == pytest.approx(0.5)


def test_balanced_accuracy_multiclass():
    y = [0, 0, 1, 1, 2, 2]
    p = [0, 0, 1, 0, 2, 2]
    # recalls: 1.0, 0.5, 1.0
    assert balanced_accuracy_score(y, p) == pytest.approx(2.5 / 3)


def test_balanced_accuracy_ignores_classes_absent_from_truth():
    y = [0, 0, 1]
    p = [0, 2, 1]   # class 2 never appears in y_true
    assert balanced_accuracy_score(y, p) == pytest.approx(0.75)


def test_metrics_reject_length_mismatch():
    with pytest.raises(ValueError):
        balanced_accuracy_score([0, 1], [0])


def test_metrics_reject_empty():
    with pytest.raises(ValueError):
        accuracy_score([], [])


def test_confusion_matrix_shape_and_counts():
    cm = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2])
    assert cm.shape == (3, 3)
    assert cm[0, 0] == 1 and cm[0, 1] == 1
    assert cm[1, 1] == 1 and cm[2, 2] == 1
    assert cm.sum() == 4


def test_confusion_matrix_custom_labels():
    cm = confusion_matrix([0, 1], [1, 1], labels=[1, 0])
    assert cm[1, 0] == 1  # true 0 predicted 1


def test_f1_macro_perfect():
    assert f1_score([0, 1, 1], [0, 1, 1]) == pytest.approx(1.0)


def test_f1_micro_equals_accuracy_multiclass():
    y = [0, 1, 2, 0, 1, 2]
    p = [0, 2, 1, 0, 0, 2]
    assert f1_score(y, p, average="micro") == pytest.approx(
        accuracy_score(y, p)
    )


def test_f1_invalid_average():
    with pytest.raises(ValueError):
        f1_score([0, 1], [0, 1], average="weighted")


def test_log_loss_confident_correct_is_small():
    proba = np.array([[0.99, 0.01], [0.01, 0.99]])
    assert log_loss([0, 1], proba) < 0.05


def test_log_loss_confident_wrong_is_large():
    proba = np.array([[0.01, 0.99], [0.99, 0.01]])
    assert log_loss([0, 1], proba) > 2.0


def test_log_loss_1d_proba_binary():
    # 1D proba is interpreted as P(class 1)
    val = log_loss([1, 0], np.array([0.9, 0.1]))
    assert val == pytest.approx(-np.log(0.9), rel=1e-6)


def test_log_loss_column_mismatch():
    with pytest.raises(ValueError):
        log_loss([0, 1, 2], np.ones((3, 2)) / 2)

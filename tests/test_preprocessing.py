"""Tests for the data/feature preprocessor families."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.preprocessing import (
    FeatureAgglomeration,
    GaussianRandomProjection,
    KBinsDiscretizer,
    LabelEncoder,
    MinMaxScaler,
    Normalizer,
    OneHotEncoder,
    OrdinalEncoder,
    PCA,
    PolynomialFeatures,
    QuantileTransformer,
    RobustScaler,
    SelectKBest,
    SelectPercentile,
    SimpleImputer,
    StandardScaler,
    TruncatedSVD,
    VarianceThreshold,
    f_classif,
    mutual_info_classif,
)


class TestImputer:
    def _data(self):
        X = np.array([[1.0, 2.0], [np.nan, 4.0], [3.0, np.nan]])
        return X

    def test_mean(self):
        out = SimpleImputer("mean").fit_transform(self._data())
        assert out[1, 0] == pytest.approx(2.0)
        assert out[2, 1] == pytest.approx(3.0)

    def test_median(self):
        X = np.array([[1.0], [2.0], [100.0], [np.nan]])
        out = SimpleImputer("median").fit_transform(X)
        assert out[3, 0] == pytest.approx(2.0)

    def test_most_frequent(self):
        X = np.array([[1.0], [1.0], [2.0], [np.nan]])
        out = SimpleImputer("most_frequent").fit_transform(X)
        assert out[3, 0] == 1.0

    def test_constant(self):
        out = SimpleImputer("constant", fill_value=-5.0).fit_transform(
            self._data()
        )
        assert out[1, 0] == -5.0

    def test_all_missing_column_uses_fill(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer("mean", fill_value=0.0).fit_transform(X)
        assert np.all(out == 0.0)

    def test_no_nan_left(self):
        out = SimpleImputer().fit_transform(self._data())
        assert np.isfinite(out).all()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer("magic").fit(self._data())

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SimpleImputer().transform(self._data())


class TestScalers:
    def test_standard_scaler_zero_mean_unit_std(self, rng):
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_minmax_range(self, rng):
        X = rng.normal(0, 10, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 - 1e-12
        assert Z.max() <= 1.0 + 1e-12

    def test_minmax_custom_range(self, rng):
        X = rng.normal(0, 1, (50, 2))
        Z = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        assert Z.min() == pytest.approx(-1.0)
        assert Z.max() == pytest.approx(1.0)

    def test_minmax_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1, 0)).fit(np.zeros((3, 1)))

    def test_robust_scaler_outlier_resistant(self, rng):
        X = rng.normal(0, 1, (200, 1))
        X[0] = 1e6
        Z = RobustScaler().fit_transform(X)
        # the bulk of the data should stay in a small range
        assert np.percentile(np.abs(Z), 90) < 3.0

    def test_robust_invalid_quantiles(self):
        with pytest.raises(ValueError):
            RobustScaler(quantile_range=(80, 20)).fit(np.zeros((5, 1)))

    def test_normalizer_unit_rows(self, rng):
        X = rng.normal(0, 5, (40, 3))
        Z = Normalizer().fit_transform(X)
        assert np.allclose(np.linalg.norm(Z, axis=1), 1.0)


class TestEncoders:
    def test_label_encoder_roundtrip(self):
        enc = LabelEncoder().fit([5, 3, 3, 9])
        codes = enc.transform([3, 5, 9])
        assert codes.tolist() == [0, 1, 2]
        assert enc.inverse_transform(codes).tolist() == [3, 5, 9]

    def test_label_encoder_unseen_raises(self):
        enc = LabelEncoder().fit([1, 2])
        with pytest.raises(ValueError):
            enc.transform([3])

    def test_ordinal_encoder_codes(self):
        X = np.array([[10.0], [20.0], [10.0]])
        out = OrdinalEncoder().fit_transform(X)
        assert out[:, 0].tolist() == [0.0, 1.0, 0.0]

    def test_ordinal_encoder_unseen_is_minus_one(self):
        enc = OrdinalEncoder().fit(np.array([[1.0], [2.0]]))
        out = enc.transform(np.array([[3.0]]))
        assert out[0, 0] == -1.0

    def test_one_hot_width(self):
        X = np.array([[0.0, 1.0], [1.0, 2.0], [2.0, 1.0]])
        enc = OneHotEncoder(columns=[0]).fit(X)
        out = enc.transform(X)
        # passthrough col 1 + 3 levels of col 0
        assert out.shape == (3, 4)
        assert enc.n_features_out_ == 4

    def test_one_hot_unseen_category_all_zero(self):
        X = np.array([[0.0], [1.0]])
        enc = OneHotEncoder(columns=[0]).fit(X)
        out = enc.transform(np.array([[7.0]]))
        assert np.all(out == 0.0)

    def test_one_hot_max_levels_bucketing(self, rng):
        X = rng.integers(0, 40, size=(200, 1)).astype(float)
        enc = OneHotEncoder(columns=[0], max_levels=8).fit(X)
        assert enc.transform(X).shape[1] == 8

    def test_one_hot_feature_count_guard(self):
        enc = OneHotEncoder(columns=[0]).fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            enc.transform(np.zeros((3, 3)))


class TestFeatureSelection:
    def _supervised(self, rng):
        X = rng.normal(0, 1, (300, 5))
        y = (X[:, 2] > 0).astype(int)  # only column 2 is informative
        return X, y

    def test_variance_threshold_drops_constants(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        out = VarianceThreshold().fit_transform(X)
        assert out.shape == (20, 1)

    def test_variance_threshold_keeps_at_least_one(self):
        X = np.ones((10, 3))
        out = VarianceThreshold().fit_transform(X)
        assert out.shape[1] == 1

    def test_f_classif_finds_informative(self, rng):
        X, y = self._supervised(rng)
        scores = f_classif(X, y)
        assert np.argmax(scores) == 2

    def test_mutual_info_finds_informative(self, rng):
        X, y = self._supervised(rng)
        scores = mutual_info_classif(X, y)
        assert np.argmax(scores) == 2

    def test_select_k_best_keeps_informative(self, rng):
        X, y = self._supervised(rng)
        sel = SelectKBest(k=1).fit(X, y)
        assert sel.support_[2]
        assert sel.transform(X).shape == (300, 1)

    def test_select_k_best_clamps_k(self, rng):
        X, y = self._supervised(rng)
        out = SelectKBest(k=99).fit_transform(X, y)
        assert out.shape == (300, 5)

    def test_select_k_best_requires_labels(self):
        with pytest.raises(ValueError):
            SelectKBest(k=1).fit(np.zeros((5, 2)))

    def test_select_percentile(self, rng):
        X, y = self._supervised(rng)
        out = SelectPercentile(percentile=40).fit_transform(X, y)
        assert out.shape == (300, 2)


class TestDecomposition:
    def test_pca_orthogonal_components(self, rng):
        X = rng.normal(0, 1, (100, 6))
        pca = PCA(n_components=3).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-8)

    def test_pca_variance_ordering(self, rng):
        X = rng.normal(0, 1, (120, 5)) * np.array([10, 5, 2, 1, 0.5])
        pca = PCA().fit(X)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_pca_fractional_components(self, rng):
        X = rng.normal(0, 1, (80, 6)) * np.array([10, 1, 0.1, 0.1, 0.1, 0.1])
        pca = PCA(n_components=0.9).fit(X)
        assert pca.components_.shape[0] <= 2

    def test_pca_reconstruction_improves_with_k(self, rng):
        X = rng.normal(0, 1, (60, 5))
        errs = []
        for k in (1, 5):
            pca = PCA(n_components=k).fit(X)
            Z = pca.transform(X)
            recon = Z @ pca.components_ + pca.mean_
            errs.append(np.mean((X - recon) ** 2))
        assert errs[1] < errs[0]
        assert errs[1] == pytest.approx(0.0, abs=1e-12)

    def test_truncated_svd_shape(self, rng):
        X = rng.normal(0, 1, (50, 8))
        out = TruncatedSVD(n_components=3).fit_transform(X)
        assert out.shape == (50, 3)

    def test_truncated_svd_invalid(self):
        with pytest.raises(ValueError):
            TruncatedSVD(n_components=0).fit(np.zeros((4, 2)))

    def test_random_projection_shape_and_determinism(self, rng):
        X = rng.normal(0, 1, (40, 10))
        a = GaussianRandomProjection(4, random_state=0).fit_transform(X)
        b = GaussianRandomProjection(4, random_state=0).fit_transform(X)
        assert a.shape == (40, 4)
        assert np.array_equal(a, b)

    def test_feature_agglomeration_reduces_width(self, rng):
        X = rng.normal(0, 1, (60, 12))
        out = FeatureAgglomeration(n_clusters=4).fit_transform(X)
        assert out.shape == (60, 4)


class TestDiscretization:
    def test_quantile_transform_uniformises(self, rng):
        X = rng.exponential(2.0, (500, 1))
        Z = QuantileTransformer(n_quantiles=100).fit_transform(X)
        assert Z.min() >= 0 and Z.max() <= 1
        # roughly uniform: middle quantile near 0.5
        assert abs(np.median(Z) - 0.5) < 0.05

    def test_quantile_invalid(self):
        with pytest.raises(ValueError):
            QuantileTransformer(n_quantiles=1).fit(np.zeros((5, 1)))

    def test_kbins_codes_range(self, rng):
        X = rng.normal(0, 1, (200, 2))
        Z = KBinsDiscretizer(n_bins=4).fit_transform(X)
        assert set(np.unique(Z)).issubset({0.0, 1.0, 2.0, 3.0})

    def test_kbins_invalid(self):
        with pytest.raises(ValueError):
            KBinsDiscretizer(n_bins=1).fit(np.zeros((5, 1)))


class TestPolynomial:
    def test_degree2_width(self):
        X = np.ones((5, 3))
        poly = PolynomialFeatures(degree=2).fit(X)
        # 3 linear + 6 degree-2 combos with replacement
        assert poly.n_features_out_ == 9

    def test_interaction_only(self):
        X = np.ones((5, 3))
        poly = PolynomialFeatures(degree=2, interaction_only=True).fit(X)
        # 3 linear + 3 pairwise
        assert poly.n_features_out_ == 6

    def test_values_correct(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(X)
        assert set(np.round(out[0], 6)) == {2.0, 3.0, 4.0, 6.0, 9.0}

    def test_width_cap(self, rng):
        X = rng.normal(0, 1, (10, 40))
        poly = PolynomialFeatures(degree=2, max_output_features=64).fit(X)
        assert poly.n_features_out_ == 64

    def test_feature_count_guard(self):
        poly = PolynomialFeatures().fit(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            poly.transform(np.zeros((4, 3)))

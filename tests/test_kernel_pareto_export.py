"""Kernel-approximation model, Pareto analysis, and raw-result export."""

import numpy as np
import pytest

from repro.analysis import (
    ParetoPoint,
    hypervolume_2d,
    is_pareto_optimal,
    pareto_front,
    store_to_points,
)
from repro.experiments import (
    ResultsStore,
    RunRecord,
    export_aggregate_csv,
    export_raw_csv,
    load_raw_csv,
)
from repro.models import KernelApproxSVC, RBFSampler


class TestRBFSampler:
    def test_output_shape_and_range(self, rng):
        X = rng.normal(0, 1, (50, 4))
        Z = RBFSampler(n_components=16, random_state=0).fit_transform(X)
        assert Z.shape == (50, 16)
        # cos features scaled by sqrt(2/n)
        assert np.abs(Z).max() <= np.sqrt(2.0 / 16) + 1e-9

    def test_kernel_approximation_quality(self, rng):
        """Inner products of features approximate the RBF kernel."""
        X = rng.normal(0, 1, (40, 3))
        gamma = 0.5
        Z = RBFSampler(gamma=gamma, n_components=2048,
                       random_state=0).fit_transform(X)
        approx = Z @ Z.T
        d2 = (
            np.sum(X**2, axis=1)[:, None] - 2 * X @ X.T
            + np.sum(X**2, axis=1)[None, :]
        )
        exact = np.exp(-gamma * d2)
        assert np.abs(approx - exact).mean() < 0.05

    def test_invalid_params(self, rng):
        X = rng.normal(0, 1, (10, 2))
        with pytest.raises(ValueError):
            RBFSampler(n_components=0).fit(X)
        with pytest.raises(ValueError):
            RBFSampler(gamma=0.0).fit(X)


class TestKernelApproxSVC:
    def test_learns_nonlinear_boundary(self, rng):
        X = rng.uniform(-1, 1, (500, 2))
        y = (np.linalg.norm(X, axis=1) < 0.6).astype(int)  # circular
        svc = KernelApproxSVC(gamma=2.0, n_components=128,
                              random_state=0).fit(X, y)
        assert svc.score(X, y) > 0.85

    def test_inference_cost_independent_of_train_size(self, rng):
        X = rng.normal(0, 1, (600, 4))
        y = (X[:, 0] > 0).astype(int)
        small = KernelApproxSVC(random_state=0).fit(X[:100], y[:100])
        big = KernelApproxSVC(random_state=0).fit(X, y)
        assert small.inference_flops(10) == big.inference_flops(10)

    def test_proba_contract(self, split_multiclass):
        X_tr, X_te, y_tr, _ = split_multiclass
        svc = KernelApproxSVC(random_state=0).fit(X_tr, y_tr)
        proba = svc.predict_proba(X_te)
        assert proba.shape == (len(X_te), 4)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)


class TestPareto:
    def _points(self):
        return [
            ParetoPoint("cheap-weak", accuracy=0.6, energy=1.0),
            ParetoPoint("balanced", accuracy=0.8, energy=3.0),
            ParetoPoint("pricey-strong", accuracy=0.9, energy=10.0),
            ParetoPoint("dominated", accuracy=0.7, energy=5.0),
        ]

    def test_front_members(self):
        front = pareto_front(self._points())
        labels = [p.label for p in front]
        assert labels == ["cheap-weak", "balanced", "pricey-strong"]

    def test_dominated_excluded(self):
        assert not is_pareto_optimal("dominated", self._points())
        assert is_pareto_optimal("balanced", self._points())

    def test_dominates_semantics(self):
        a = ParetoPoint("a", 0.8, 1.0)
        b = ParetoPoint("b", 0.8, 2.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_hypervolume_grows_with_better_front(self):
        base = [ParetoPoint("x", 0.5, 5.0)]
        better = [ParetoPoint("x", 0.9, 1.0)]
        assert hypervolume_2d(better, ref_energy=10.0) > hypervolume_2d(
            base, ref_energy=10.0
        )

    def test_hypervolume_empty(self):
        assert hypervolume_2d([]) == 0.0

    def test_store_to_points(self):
        store = ResultsStore()
        for system, acc, inf in (("CAML", 0.8, 1e-13), ("TabPFN", 0.7, 1e-11)):
            store.add(RunRecord(
                system=system, dataset="d", configured_seconds=10.0, seed=0,
                balanced_accuracy=acc, execution_kwh=1e-3,
                actual_seconds=10.0, inference_kwh_per_instance=inf,
                inference_seconds_per_instance=1e-6,
            ))
        points = store_to_points(store, budget=10.0)
        assert {p.label for p in points} == {"CAML", "TabPFN"}
        # CAML dominates here: better accuracy AND less energy
        assert is_pareto_optimal("CAML", points)
        assert not is_pareto_optimal("TabPFN", points)


class TestExport:
    def _store(self):
        store = ResultsStore()
        for seed in (0, 1):
            store.add(RunRecord(
                system="CAML", dataset="credit-g", configured_seconds=10.0,
                seed=seed, balanced_accuracy=0.8 + 0.01 * seed,
                execution_kwh=1e-3, actual_seconds=10.5,
                inference_kwh_per_instance=1e-13,
                inference_seconds_per_instance=1e-6,
            ))
        return store

    def test_raw_roundtrip(self, tmp_path):
        store = self._store()
        path = tmp_path / "raw.csv"
        n = export_raw_csv(store, path)
        assert n == 2
        loaded = load_raw_csv(path)
        assert len(loaded) == 2
        assert loaded.records[0].system == "CAML"
        assert loaded.records[1].balanced_accuracy == pytest.approx(0.81)
        assert loaded.records[0].failed is False

    def test_aggregate_csv(self, tmp_path):
        store = self._store()
        path = tmp_path / "agg.csv"
        rows = export_aggregate_csv(store, path)
        assert rows == 1
        content = path.read_text()
        assert "balanced_accuracy_mean" in content
        assert "CAML" in content

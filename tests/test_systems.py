"""The six AutoML systems: contract tests + system-specific behaviour.

Budgets are scaled hard (time_scale <= 0.01) so the whole module runs in
well under a minute.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset, make_classification
from repro.exceptions import NotFittedError
from repro.metrics import balanced_accuracy_score
from repro.systems import (
    SYSTEM_REGISTRY,
    AutoGluonSystem,
    AutoSklearnSystem,
    CamlConstraints,
    CamlParameters,
    CamlSystem,
    FlamlSystem,
    TabPFNSystem,
    TpotSystem,
    make_system,
)

FAST = dict(time_scale=0.004, random_state=0)


@pytest.fixture(scope="module")
def ds():
    return load_dataset("credit-g")


class TestRegistry:
    def test_all_seven_systems_available(self):
        assert set(SYSTEM_REGISTRY) == {
            "CAML", "AutoGluon", "AutoSklearn1", "AutoSklearn2",
            "FLAML", "TabPFN", "TPOT",
        }

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            make_system("H2O")

    def test_strategy_cards_match_table1(self):
        card = make_system("AutoGluon").strategy_card()
        assert card.ensembling == "Caruana & bagging & stacking"
        card = make_system("TabPFN").strategy_card()
        assert card.search == "-"
        card = make_system("CAML").strategy_card()
        assert "successive halving" in card.search
        card = make_system("TPOT").strategy_card()
        assert card.search == "genetic programming"


@pytest.mark.parametrize("name", sorted(SYSTEM_REGISTRY))
class TestSystemContract:
    def test_fit_predict_score_energy(self, name, ds):
        system = make_system(name, **FAST)
        budget = max(60.0, system.min_budget_s)
        system.fit(ds.X_train, ds.y_train, budget_s=budget,
                   categorical_mask=ds.categorical_mask)
        acc = balanced_accuracy_score(ds.y_test, system.predict(ds.X_test))
        assert acc > 0.6   # all systems must beat chance comfortably
        fr = system.fit_result_
        assert fr.execution_kwh > 0
        assert fr.actual_seconds > 0
        assert system.inference_kwh_per_instance() > 0
        proba = system.predict_proba(ds.X_test)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_unfitted_raises(self, name):
        with pytest.raises(NotFittedError):
            make_system(name, **FAST).predict(np.zeros((2, 3)))


class TestBudgets:
    def test_askl_rejects_small_budget(self, ds):
        with pytest.raises(ValueError, match="below"):
            make_system("AutoSklearn1", **FAST).fit(
                ds.X_train, ds.y_train, budget_s=10,
            )

    def test_tpot_rejects_sub_minute_budget(self, ds):
        with pytest.raises(ValueError, match="below"):
            make_system("TPOT", **FAST).fit(
                ds.X_train, ds.y_train, budget_s=30,
            )

    def test_caml_adheres_strictly(self, ds):
        system = make_system("CAML", **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        assert system.fit_result_.overrun_ratio < 1.4

    def test_tabpfn_constant_execution_time(self, ds):
        times = []
        for budget in (10.0, 300.0):
            system = make_system("TabPFN", **FAST)
            system.fit(ds.X_train, ds.y_train, budget_s=budget)
            times.append(system.fit_result_.actual_seconds)
        assert times[0] == pytest.approx(times[1])
        assert times[0] < 1.0   # ~0.29s model load

    def test_autogluon_overruns_small_budget(self, ds):
        system = make_system("AutoGluon", **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=10,
                   categorical_mask=ds.categorical_mask)
        assert system.fit_result_.overrun_ratio > 1.2


class TestCaml:
    def test_single_model_deployed(self, ds):
        system = CamlSystem(**FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        assert system.n_ensemble_members == 1

    def test_classifier_space_pruning(self, ds):
        params = CamlParameters(classifiers=["gaussian_nb"])
        system = CamlSystem(params=params, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=20,
                   categorical_mask=ds.categorical_mask)
        config = system.fit_result_.info["best_config"]
        assert config["classifier"] == "gaussian_nb"

    def test_inference_constraint_is_enforced(self, ds):
        limit = 1e-9   # binding: unconstrained models span ~3e-10..2e-8
        constrained = CamlSystem(
            constraints=CamlConstraints(inference_time_per_instance=limit),
            **FAST,
        )
        constrained.fit(ds.X_train, ds.y_train, budget_s=30,
                        categorical_mask=ds.categorical_mask)
        # the deployed model must actually satisfy the constraint
        est = constrained.inference_estimate(1000)
        assert est.seconds / 1000.0 <= limit * 1.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CamlParameters(classifiers=[])
        with pytest.raises(ValueError):
            CamlParameters(holdout_fraction=0.0)
        with pytest.raises(ValueError):
            CamlParameters(evaluation_fraction=2.0)

    def test_sampling_parameter(self, ds):
        params = CamlParameters(sample_cap=60)
        system = CamlSystem(params=params, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=20,
                   categorical_mask=ds.categorical_mask)
        assert system.score(ds.X_test, ds.y_test) > 0.55

    def test_refit_parameter(self, ds):
        params = CamlParameters(refit=True)
        system = CamlSystem(params=params, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=20,
                   categorical_mask=ds.categorical_mask)
        assert system.score(ds.X_test, ds.y_test) > 0.6


class TestAutoGluon:
    def test_ensemble_members_many(self, ds):
        """O1: the stacked bagged ensemble carries many models."""
        system = AutoGluonSystem(**FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=60,
                   categorical_mask=ds.categorical_mask)
        assert system.n_ensemble_members >= 5

    def test_inference_energy_order_of_magnitude_above_caml(self, ds):
        """O1 on average: a single CAML model can occasionally be a forest,
        so compare seed-averaged inference energies."""
        ag_kwh, caml_kwh = [], []
        for seed in (0, 1, 2):
            ag = AutoGluonSystem(time_scale=0.004, random_state=seed)
            ag.fit(ds.X_train, ds.y_train, budget_s=60,
                   categorical_mask=ds.categorical_mask)
            ag_kwh.append(ag.inference_kwh_per_instance())
            caml = CamlSystem(time_scale=0.004, random_state=seed)
            caml.fit(ds.X_train, ds.y_train, budget_s=60,
                     categorical_mask=ds.categorical_mask)
            caml_kwh.append(caml.inference_kwh_per_instance())
        assert np.mean(ag_kwh) > 4 * np.mean(caml_kwh)

    def test_refit_mode_cuts_inference_energy(self, ds):
        """Figure 6: the inference-optimised preset saves most of the
        inference energy at a small accuracy cost."""
        normal = AutoGluonSystem(**FAST)
        normal.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        fast = AutoGluonSystem(optimize_for_inference=True, **FAST)
        fast.fit(ds.X_train, ds.y_train, budget_s=30,
                 categorical_mask=ds.categorical_mask)
        assert (
            fast.inference_kwh_per_instance()
            < 0.6 * normal.inference_kwh_per_instance()
        )

    def test_caruana_weights_normalised(self, ds):
        system = AutoGluonSystem(**FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        assert system.model_.weights.sum() == pytest.approx(1.0)


class TestAutoSklearn:
    def test_returns_caruana_ensemble(self, ds):
        system = AutoSklearnSystem(version=1, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=60,
                   categorical_mask=ds.categorical_mask)
        assert system.n_ensemble_members >= 2

    def test_version_names(self):
        assert AutoSklearnSystem(version=1).system_name == "AutoSklearn1"
        assert AutoSklearnSystem(version=2).system_name == "AutoSklearn2"

    def test_invalid_version(self):
        with pytest.raises(ValueError):
            AutoSklearnSystem(version=3)

    def test_warm_start_used(self, ds):
        from repro.metalearning import MetaDatabase, MetaEntry

        db = MetaDatabase(entries=[
            MetaEntry(
                "m0", np.zeros(9),
                [{"classifier": "gaussian_nb",
                  "imputation": "mean", "scaling": "standard",
                  "feature_preprocessor": "none"}],
                [0.9],
            ),
        ])
        system = AutoSklearnSystem(version=1, meta_database=db, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        assert system.fit_result_.info["warm_started"]


class TestFlaml:
    def test_deploys_single_cheap_model(self, ds):
        system = FlamlSystem(**FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        assert system.n_ensemble_members == 1

    def test_lowest_inference_energy_of_search_systems(self, ds):
        flaml = FlamlSystem(**FAST)
        flaml.fit(ds.X_train, ds.y_train, budget_s=30,
                  categorical_mask=ds.categorical_mask)
        ag = AutoGluonSystem(**FAST)
        ag.fit(ds.X_train, ds.y_train, budget_s=30,
               categorical_mask=ds.categorical_mask)
        assert (
            flaml.inference_kwh_per_instance()
            < ag.inference_kwh_per_instance()
        )


class TestTabPFN:
    def test_rejects_too_many_classes(self):
        X, y = make_classification(400, 8, 12, random_state=0)
        system = TabPFNSystem(**FAST)
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            system.fit(X, y, budget_s=60)

    def test_inference_energy_dominates_everyone(self, ds):
        tab = TabPFNSystem(**FAST)
        tab.fit(ds.X_train, ds.y_train, budget_s=10)
        caml = CamlSystem(**FAST)
        caml.fit(ds.X_train, ds.y_train, budget_s=10,
                 categorical_mask=ds.categorical_mask)
        assert (
            tab.inference_kwh_per_instance()
            > 50 * caml.inference_kwh_per_instance()
        )

    def test_execution_energy_is_tiny(self, ds):
        tab = TabPFNSystem(**FAST)
        tab.fit(ds.X_train, ds.y_train, budget_s=300)
        caml = CamlSystem(**FAST)
        caml.fit(ds.X_train, ds.y_train, budget_s=300,
                 categorical_mask=ds.categorical_mask)
        assert (
            tab.fit_result_.execution_kwh
            < 0.1 * caml.fit_result_.execution_kwh
        )

    def test_support_subsampling(self):
        X, y = make_classification(1000, 6, 2, random_state=1)
        system = TabPFNSystem(subsample_support=200, **FAST)
        system.fit(X, y, budget_s=10)
        assert system.fit_result_.info["n_support"] <= 210


class TestTpot:
    def test_cv_evaluations_counted(self, ds):
        system = TpotSystem(population_size=4, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=60,
                   categorical_mask=ds.categorical_mask)
        assert system.fit_result_.n_evaluations >= 4
        assert system.fit_result_.info["generations"] >= 1


class TestParallelAndGpu:
    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            make_system("CAML", n_cores=0)

    def test_gpu_requires_gpu_machine(self):
        from repro.energy import XEON_GOLD_6132

        with pytest.raises(ValueError):
            make_system("TabPFN", use_gpu=True, machine=XEON_GOLD_6132)

    def test_gpu_machine_default(self):
        system = make_system("TabPFN", use_gpu=True)
        assert system.machine.gpu is not None

    def test_caml_multicore_uses_more_energy(self, ds):
        one = make_system("CAML", **FAST)
        one.fit(ds.X_train, ds.y_train, budget_s=30,
                categorical_mask=ds.categorical_mask)
        eight = make_system("CAML", n_cores=8, **FAST)
        eight.fit(ds.X_train, ds.y_train, budget_s=30,
                  categorical_mask=ds.categorical_mask)
        ratio = (
            eight.fit_result_.execution_kwh / one.fit_result_.execution_kwh
        )
        assert 1.3 < ratio < 4.5   # paper: up to 2.7x

    def test_autogluon_multicore_saves_energy(self, ds):
        one = make_system("AutoGluon", **FAST)
        one.fit(ds.X_train, ds.y_train, budget_s=30,
                categorical_mask=ds.categorical_mask)
        eight = make_system("AutoGluon", n_cores=8, **FAST)
        eight.fit(ds.X_train, ds.y_train, budget_s=30,
                  categorical_mask=ds.categorical_mask)
        assert (
            eight.fit_result_.execution_kwh
            < one.fit_result_.execution_kwh
        )

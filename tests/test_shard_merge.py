"""Property-based pins (hypothesis) on the deterministic journal merge.

``merge_journals`` is the heart of the sharded campaign's bit-identity
claim, so its algebra is pinned wholesale: merging is commutative over
segment order, associative over grouping, idempotent on its own output,
byte-stable across repeated runs, and tolerant of torn/corrupt lines.
"""

import json
import tempfile
from dataclasses import asdict
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.results import RunRecord
from repro.runtime import canonical_state_bytes, merge_journals

MERGE_SETTINGS = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _record(acc: float) -> dict:
    return asdict(RunRecord(
        system="CAML", dataset="credit-g", configured_seconds=10.0,
        seed=7, balanced_accuracy=acc, execution_kwh=1e-5,
        actual_seconds=0.1, inference_kwh_per_instance=1e-12,
        inference_seconds_per_instance=1e-6,
    ))


# -- a segment-set generator ---------------------------------------------------
# commits: (key, attempt, shard, epoch, segment, acc-milli)
_commits = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2), st.integers(0, 3),
              st.integers(0, 2), st.integers(0, 3), st.integers(0, 999)),
    min_size=1, max_size=12,
)
#: keys 3-4 can collide with commits: a skip racing a commit resolves
#: to the committed record (pure cells make the race benign)
_skips = st.lists(
    st.tuples(st.integers(3, 7), st.integers(0, 3)), max_size=4,
)
_fences = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 2)), max_size=3,
    unique=True,
)


@st.composite
def segment_sets(draw):
    """Synthesize 2-4 journal segments with duplicate commits, skips,
    fences and lease heartbeats spread across them."""
    n_segments = draw(st.integers(2, 4))
    events = [[{"type": "campaign", "n_cells": 8}]
              for _ in range(n_segments)]
    for key, attempt, shard, epoch, seg, acc in draw(_commits):
        events[seg % n_segments].append({
            "type": "cell", "index": key, "key": f"key-{key}",
            "record": _record(acc / 1000.0), "attempt": attempt,
            "shard": shard, "epoch": epoch,
        })
    for key, seg in draw(_skips):
        events[seg % n_segments].append({
            "type": "skip", "index": key, "key": f"key-{key}",
            "note": "budget does not exist", "shard": seg % n_segments,
            "epoch": 0,
        })
    for shard, epoch in draw(_fences):
        events[0].append({
            "type": "fence", "fenced_shard": shard,
            "fenced_epoch": epoch, "reason": "lease_expire",
        })
    for seg in range(n_segments):
        events[seg].append({
            "type": "lease", "beat": seg + 1, "done": 0,
            "shard": seg, "epoch": 0,
        })
    return events


def _write(tmp: Path, segments) -> list[Path]:
    paths = []
    for k, events in enumerate(segments):
        path = tmp / f"campaign.shard-{k}.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events),
            encoding="utf-8",
        )
        paths.append(path)
    return paths


class TestMergeAlgebra:
    @MERGE_SETTINGS
    @given(segments=segment_sets(), data=st.data())
    def test_commutative_over_segment_order(self, segments, data):
        with tempfile.TemporaryDirectory() as tmp:
            paths = _write(Path(tmp), segments)
            shuffled = data.draw(st.permutations(paths))
            a = merge_journals(paths)
            b = merge_journals(shuffled)
            assert a.canonical_bytes() == b.canonical_bytes()
            assert canonical_state_bytes(a.state) == \
                canonical_state_bytes(b.state)
            assert (a.fenced_commits, a.dedup_commits) == \
                (b.fenced_commits, b.dedup_commits)

    @MERGE_SETTINGS
    @given(segments=segment_sets(), split=st.integers(1, 3))
    def test_associative_over_grouping(self, segments, split):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            paths = _write(tmp, segments)
            split = min(split, len(paths) - 1)
            partial = merge_journals(paths[:split])
            partial_path = partial.write(tmp / "partial.jsonl")
            regrouped = merge_journals([partial_path, *paths[split:]])
            whole = merge_journals(paths)
            assert regrouped.canonical_bytes() == whole.canonical_bytes()

    @MERGE_SETTINGS
    @given(segments=segment_sets())
    def test_idempotent_on_own_output(self, segments):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            merged = merge_journals(_write(tmp, segments))
            again = merge_journals([merged.write(tmp / "merged.jsonl")])
            assert again.canonical_bytes() == merged.canonical_bytes()
            # duplicates were already resolved: a re-merge finds none
            assert again.fenced_commits == 0
            assert again.dedup_commits == 0

    @MERGE_SETTINGS
    @given(segments=segment_sets())
    def test_byte_stable_across_runs(self, segments):
        with tempfile.TemporaryDirectory() as tmp:
            paths = _write(Path(tmp), segments)
            assert merge_journals(paths).canonical_bytes() == \
                merge_journals(paths).canonical_bytes()

    @MERGE_SETTINGS
    @given(segments=segment_sets())
    def test_first_write_wins_by_attempt(self, segments):
        with tempfile.TemporaryDirectory() as tmp:
            merged = merge_journals(_write(Path(tmp), segments))
            commits = [e for seg in segments for e in seg
                       if e["type"] == "cell"]
            fenced = set(merged.fenced_epochs)
            for key, record in merged.state.completed.items():
                dupes = [e for e in commits if e["key"] == key]
                live = [e for e in dupes
                        if (e["shard"], e["epoch"]) not in fenced]
                pool = live or dupes
                best = min(e["attempt"] for e in pool)
                winner_accs = {e["record"]["balanced_accuracy"]
                               for e in pool if e["attempt"] == best}
                assert record.balanced_accuracy in winner_accs


class TestMergeTolerance:
    @MERGE_SETTINGS
    @given(segments=segment_sets(), data=st.data())
    def test_corrupt_middle_line_recovers_and_is_counted(
            self, segments, data):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            paths = _write(tmp, segments)
            victim = data.draw(
                st.sampled_from([p for p in paths
                                 if len(segments[paths.index(p)]) >= 3]))
            lines = victim.read_text().splitlines()
            hit = data.draw(st.integers(1, len(lines) - 2))
            lines[hit] = lines[hit][: len(lines[hit]) // 2] + '\x00{"torn":'
            victim.write_text("\n".join(lines) + "\n")

            damaged = merge_journals(paths)
            assert damaged.state.skipped_lines == 1
            # every key not on the corrupted line still resolves
            survivors = {
                e["key"] for k, seg in enumerate(segments)
                for i, e in enumerate(seg)
                if e["type"] in ("cell", "skip")
                and not (paths[k] == victim and i == hit)
            }
            resolved = (set(damaged.state.completed)
                        | damaged.state.skipped)
            assert survivors <= resolved

    @MERGE_SETTINGS
    @given(segments=segment_sets())
    def test_torn_tail_is_silently_ignored(self, segments):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            paths = _write(tmp, segments)
            reference = merge_journals(paths).canonical_bytes()
            with open(paths[0], "a", encoding="utf-8") as fh:
                fh.write('{"type": "cell", "index": 0, "rec')  # no \n
            torn = merge_journals(paths)
            assert torn.state.skipped_lines == 0
            assert torn.canonical_bytes() == reference

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.utils.validation import (
    check_array,
    check_is_fitted,
    check_X_y,
    column_or_1d,
)


def test_check_array_reshapes_1d():
    out = check_array([1.0, 2.0, 3.0])
    assert out.shape == (3, 1)


def test_check_array_rejects_3d():
    with pytest.raises(ValueError, match="2D"):
        check_array(np.zeros((2, 2, 2)))


def test_check_array_rejects_nan_by_default():
    with pytest.raises(ValueError, match="NaN"):
        check_array([[1.0, np.nan]])


def test_check_array_allows_nan_when_asked():
    out = check_array([[1.0, np.nan]], allow_nan=True)
    assert np.isnan(out[0, 1])


def test_check_array_rejects_inf():
    with pytest.raises(ValueError):
        check_array([[np.inf, 0.0]])


def test_check_array_min_samples():
    with pytest.raises(ValueError, match="sample"):
        check_array(np.zeros((1, 3)), min_samples=2)


def test_column_or_1d_flattens_column():
    assert column_or_1d(np.zeros((4, 1))).shape == (4,)


def test_column_or_1d_rejects_matrix():
    with pytest.raises(ValueError):
        column_or_1d(np.zeros((4, 2)))


def test_check_X_y_length_mismatch():
    with pytest.raises(ValueError, match="inconsistent"):
        check_X_y(np.zeros((3, 2)), np.zeros(4))


def test_check_X_y_roundtrip():
    X, y = check_X_y([[1.0], [2.0]], [0, 1])
    assert X.shape == (2, 1)
    assert y.shape == (2,)


class _Obj:
    fitted_ = None


def test_check_is_fitted_raises():
    with pytest.raises(NotFittedError):
        check_is_fitted(_Obj(), "fitted_")


def test_check_is_fitted_passes():
    obj = _Obj()
    obj.fitted_ = 1
    check_is_fitted(obj, "fitted_")


def test_check_is_fitted_string_attribute():
    obj = _Obj()
    obj.fitted_ = "yes"
    check_is_fitted(obj, ["fitted_"])

"""Linear models, naive Bayes, kNN, MLP, discriminants, dummy, base."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.metrics import balanced_accuracy_score
from repro.models import (
    BernoulliNB,
    DummyClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearDiscriminantAnalysis,
    LogisticRegression,
    MLPClassifier,
    MultinomialNB,
    QuadraticDiscriminantAnalysis,
    RidgeClassifier,
    SGDClassifier,
    clone,
)

LINEAR_FRIENDLY_MIN = 0.8


@pytest.mark.parametrize("model", [
    LogisticRegression(),
    SGDClassifier(loss="hinge", random_state=0),
    SGDClassifier(loss="log", random_state=0),
    RidgeClassifier(),
    GaussianNB(),
    LinearDiscriminantAnalysis(),
])
def test_linear_friendly_models_on_separable_data(model, split_binary):
    X_tr, X_te, y_tr, y_te = split_binary
    model.fit(X_tr, y_tr)
    assert balanced_accuracy_score(y_te, model.predict(X_te)) > LINEAR_FRIENDLY_MIN


@pytest.mark.parametrize("model", [
    LogisticRegression(),
    SGDClassifier(random_state=0),
    RidgeClassifier(),
    GaussianNB(),
    MultinomialNB(),
    BernoulliNB(),
    KNeighborsClassifier(),
    MLPClassifier(max_iter=10, random_state=0),
    LinearDiscriminantAnalysis(),
    QuadraticDiscriminantAnalysis(),
    DummyClassifier(),
])
def test_proba_contract(model, split_multiclass):
    """predict_proba: right shape, normalised, classes_ aligned."""
    X_tr, X_te, y_tr, _ = split_multiclass
    model.fit(X_tr, y_tr)
    proba = model.predict_proba(X_te)
    assert proba.shape == (len(X_te), 4)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
    assert proba.min() >= -1e-12
    preds = model.predict(X_te)
    assert set(preds).issubset(set(model.classes_))


@pytest.mark.parametrize("model", [
    LogisticRegression(),
    GaussianNB(),
    KNeighborsClassifier(),
    MLPClassifier(random_state=0),
])
def test_unfitted_raises(model):
    with pytest.raises(NotFittedError):
        model.predict(np.zeros((2, 3)))


class TestLogisticRegression:
    def test_regularisation_shrinks_weights(self, binary_data):
        X, y = binary_data
        tight = LogisticRegression(C=1e-3).fit(X, y)
        loose = LogisticRegression(C=1e3).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_decision_function_shape(self, split_multiclass):
        X_tr, X_te, y_tr, _ = split_multiclass
        lr = LogisticRegression().fit(X_tr, y_tr)
        assert lr.decision_function(X_te).shape == (len(X_te), 4)


class TestSGD:
    def test_invalid_loss(self, binary_data):
        X, y = binary_data
        with pytest.raises(ValueError):
            SGDClassifier(loss="squared").fit(X, y)

    def test_deterministic(self, binary_data):
        X, y = binary_data
        a = SGDClassifier(random_state=5).fit(X, y).predict(X)
        b = SGDClassifier(random_state=5).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestNaiveBayes:
    def test_gaussian_recovers_means(self, rng):
        X0 = rng.normal(-2, 1, (100, 2))
        X1 = rng.normal(2, 1, (100, 2))
        X = np.vstack([X0, X1])
        y = np.array([0] * 100 + [1] * 100)
        nb = GaussianNB().fit(X, y)
        assert np.allclose(nb.theta_[0], -2, atol=0.5)
        assert np.allclose(nb.theta_[1], 2, atol=0.5)

    def test_multinomial_handles_negative_inputs(self, binary_data):
        X, y = binary_data  # contains negatives
        nb = MultinomialNB().fit(X, y)
        assert np.isfinite(nb.predict_proba(X)).all()

    def test_bernoulli_binarises(self, rng):
        X = rng.normal(0, 1, (200, 4))
        y = (X[:, 0] > 0).astype(int)
        nb = BernoulliNB().fit(X, y)
        assert nb.score(X, y) > 0.9


class TestKNN:
    def test_k1_memorises_training(self, binary_data):
        X, y = binary_data
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert knn.score(X, y) == pytest.approx(1.0)

    def test_distance_weighting(self, split_binary):
        X_tr, X_te, y_tr, y_te = split_binary
        knn = KNeighborsClassifier(n_neighbors=9, weights="distance")
        knn.fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, knn.predict(X_te)) > 0.7

    def test_invalid_weights(self, binary_data):
        X, y = binary_data
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="magic").fit(X, y)

    def test_invalid_k(self, binary_data):
        X, y = binary_data
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0).fit(X, y)

    def test_k_larger_than_train_clamped(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        knn = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        assert knn.predict(X).shape == (3,)

    def test_inference_flops_scale_with_train_size(self, binary_data):
        X, y = binary_data
        small = KNeighborsClassifier().fit(X[:50], y[:50])
        big = KNeighborsClassifier().fit(X, y)
        assert big.inference_flops(10) > small.inference_flops(10)

    @pytest.mark.parametrize("weights", ["uniform", "distance"])
    def test_extreme_values_warning_free_and_finite(self, weights):
        # xb**2 used to overflow to inf, inf - inf gave NaN distances
        # and argpartition returned arbitrary neighbours
        import warnings

        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 5))
        y = (X[:, 0] > 0).astype(int)
        X[0, 0] = 1e308
        X[1, 1] = -1e308
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            knn = KNeighborsClassifier(
                n_neighbors=3, weights=weights).fit(X, y)
            proba = knn.predict_proba(X[:20])
            pred = knn.predict(X[:20])
        assert np.isfinite(proba).all()
        assert set(pred) <= {0, 1}

    def test_fallback_ranks_finite_queries_like_expansion(self):
        # one extreme query row routes its whole batch through the
        # direct-pairwise fallback; the finite rows in that batch must
        # still get the same neighbours as the fast expansion path
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        queries = rng.normal(size=(20, 4))
        base = knn.predict(queries)
        hot = knn.predict(np.vstack([queries,
                                     [[1e308, 0.0, 0.0, 0.0]]]))
        assert np.array_equal(hot[:-1], base)

    def test_fallback_chunking_matches_single_pass(self, monkeypatch):
        # the fallback walks training rows in bounded chunks (so one
        # extreme value cannot trigger a (batch, n_train, n_features)
        # allocation); a tiny chunk ceiling must not change the result
        import repro.models.pairwise as pairwise_mod

        rng = np.random.default_rng(2)
        X = rng.normal(size=(150, 4))
        y = (X[:, 0] > 0).astype(int)
        X[0, 0] = 1e308   # forces the fallback path for every batch
        queries = rng.normal(size=(30, 4))
        single = KNeighborsClassifier(n_neighbors=5).fit(X, y) \
            .predict_proba(queries)
        monkeypatch.setattr(
            pairwise_mod, "_FALLBACK_CHUNK_ELEMENTS", 64)
        chunked = KNeighborsClassifier(n_neighbors=5).fit(X, y) \
            .predict_proba(queries)
        assert np.array_equal(chunked, single)


class TestMLP:
    def test_learns_nonlinear_boundary(self, rng):
        X = rng.uniform(-1, 1, (400, 2))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(int)  # XOR-like
        mlp = MLPClassifier(hidden_layer_sizes=(32,), max_iter=60,
                            random_state=0).fit(X, y)
        assert mlp.score(X, y) > 0.85

    def test_two_hidden_layers(self, binary_data):
        X, y = binary_data
        mlp = MLPClassifier(hidden_layer_sizes=(16, 8), max_iter=60,
                            learning_rate=3e-3, random_state=0).fit(X, y)
        assert mlp.score(X, y) > 0.7

    def test_invalid_layer_size(self, binary_data):
        X, y = binary_data
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,)).fit(X, y)

    def test_deterministic(self, binary_data):
        X, y = binary_data
        a = MLPClassifier(max_iter=5, random_state=2).fit(X, y).predict(X)
        b = MLPClassifier(max_iter=5, random_state=2).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestDiscriminants:
    def test_qda_beats_lda_on_unequal_covariances(self, rng):
        X0 = rng.normal(0, 0.5, (150, 2))
        X1 = rng.normal(0, 3.0, (150, 2))
        X1 = X1[np.linalg.norm(X1, axis=1) > 2.0]
        X = np.vstack([X0, X1])
        y = np.array([0] * len(X0) + [1] * len(X1))
        lda = LinearDiscriminantAnalysis().fit(X, y).score(X, y)
        qda = QuadraticDiscriminantAnalysis().fit(X, y).score(X, y)
        assert qda > lda

    def test_lda_single_member_class(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]])
        y = np.array([0, 0, 1])
        lda = LinearDiscriminantAnalysis().fit(X, y)
        assert np.isfinite(lda.predict_proba(X)).all()


class TestDummy:
    def test_prior_strategy(self, binary_data):
        X, y = binary_data
        dummy = DummyClassifier().fit(X, y)
        majority = np.bincount(y).argmax()
        assert np.all(dummy.predict(X) == majority)

    def test_uniform_probabilities(self, binary_data):
        X, y = binary_data
        dummy = DummyClassifier(strategy="uniform").fit(X, y)
        assert np.allclose(dummy.predict_proba(X[:3]), 0.5)

    def test_stratified_draws_both_classes(self, binary_data):
        X, y = binary_data
        dummy = DummyClassifier(strategy="stratified",
                                random_state=0).fit(X, y)
        assert len(set(dummy.predict(X))) == 2

    def test_invalid_strategy(self, binary_data):
        X, y = binary_data
        with pytest.raises(ValueError):
            DummyClassifier(strategy="best").fit(X, y)


class TestBaseEstimator:
    def test_get_set_params_roundtrip(self):
        lr = LogisticRegression(C=2.0)
        params = lr.get_params()
        assert params["C"] == 2.0
        lr.set_params(C=5.0)
        assert lr.C == 5.0

    def test_set_invalid_param(self):
        with pytest.raises(ValueError):
            LogisticRegression().set_params(gamma=1.0)

    def test_clone_is_unfitted_copy(self, binary_data):
        X, y = binary_data
        lr = LogisticRegression(C=3.0).fit(X, y)
        cl = clone(lr)
        assert cl.C == 3.0
        with pytest.raises(NotFittedError):
            cl.predict(X)

    def test_repr_contains_params(self):
        assert "C=2.0" in repr(LogisticRegression(C=2.0))

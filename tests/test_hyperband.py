"""Hyperband multi-fidelity search."""

import numpy as np
import pytest

from repro.hpo import Hyperband, bracket_schedule
from repro.pipeline import ConfigSpace, Float


def _space():
    space = ConfigSpace()
    space.add(Float("x", 0.0, 1.0))
    return space


class TestBracketSchedule:
    def test_bracket_count(self):
        brackets = bracket_schedule(243, 3, eta=3)
        # s_max = log3(81) = 4 -> 5 brackets
        assert len(brackets) == 5

    def test_first_bracket_most_aggressive(self):
        brackets = bracket_schedule(243, 3, eta=3)
        assert brackets[0].n_configs >= brackets[-1].n_configs
        assert len(brackets[0].budgets) > len(brackets[-1].budgets)

    def test_budgets_increase_within_bracket(self):
        for bracket in bracket_schedule(100, 5, eta=2):
            assert list(bracket.budgets) == sorted(bracket.budgets)

    def test_last_bracket_full_fidelity_only(self):
        brackets = bracket_schedule(100, 5, eta=3)
        assert brackets[-1].budgets == (1.0,)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bracket_schedule(10, 0)
        with pytest.raises(ValueError):
            bracket_schedule(5, 10)
        with pytest.raises(ValueError):
            bracket_schedule(100, 5, eta=1)


class TestHyperband:
    def test_finds_good_config(self):
        y = np.arange(400) % 2
        hb = Hyperband(_space(), min_fidelity=20, random_state=0)

        def evaluate(config, idx):
            # reward x near 0.8, with more data giving a cleaner signal
            noise = 0.5 / np.sqrt(len(idx))
            return -abs(config["x"] - 0.8) + noise * 0.0

        result = hb.run(y, evaluate)
        assert result.best_config is not None
        assert abs(result.best_config["x"] - 0.8) < 0.25
        assert result.n_evaluations > 0

    def test_budget_left_stops_early(self):
        y = np.arange(200) % 2
        hb = Hyperband(_space(), min_fidelity=20, random_state=0)
        calls = {"n": 0}

        def evaluate(config, idx):
            calls["n"] += 1
            return config["x"]

        budget = iter([1.0, 1.0, -1.0] + [-1.0] * 1000)
        result = hb.run(y, evaluate, budget_left=lambda: next(budget))
        assert calls["n"] <= 3

    def test_crashing_configs_skipped(self):
        y = np.arange(120) % 2
        hb = Hyperband(_space(), min_fidelity=20, random_state=1)

        def evaluate(config, idx):
            if config["x"] < 0.5:
                raise RuntimeError("boom")
            return config["x"]

        result = hb.run(y, evaluate)
        assert result.best_config["x"] >= 0.5

    def test_uses_growing_fidelities(self):
        y = np.arange(300) % 2
        sizes = []
        hb = Hyperband(_space(), min_fidelity=10, random_state=2)

        def evaluate(config, idx):
            sizes.append(len(idx))
            return config["x"]

        hb.run(y, evaluate)
        assert max(sizes) > min(sizes)

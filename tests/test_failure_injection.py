"""Failure injection: AutoML systems must survive crashing pipelines,
degenerate data and hostile configurations — crashed evaluations count as
failures, never as silent wins."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.hpo.bo import BayesianOptimizer
from repro.pipeline import build_space
from repro.systems import CamlSystem, FlamlSystem
from repro.systems.base import PipelineEvaluator

FAST = dict(time_scale=0.004, random_state=0)


class TestCrashingPipelines:
    def test_bo_survives_crashing_objective(self):
        space = build_space(["gaussian_nb", "decision_tree"])
        opt = BayesianOptimizer(space, n_init=3, random_state=0)
        for i in range(12):
            config = opt.ask()
            if config["classifier"] == "gaussian_nb":
                opt.tell(config, float("nan"))   # simulated crash
            else:
                opt.tell(config, 0.7)
        # crashed configs are recorded as failures, best is a real score
        assert opt.best.score == pytest.approx(0.7)

    def test_caml_survives_exploding_feature_values(self):
        X, y = make_classification(200, 6, 2, random_state=0)
        X[0, 0] = 1e308   # near-overflow value
        X[1, 1] = -1e308
        system = CamlSystem(**FAST)
        system.fit(X, y, budget_s=10)
        assert system.predict(X[:5]).shape == (5,)

    def test_evaluator_charges_crashed_evaluations(self, binary_data):
        X, y = binary_data
        ev = PipelineEvaluator(X, y, random_state=0)
        with pytest.raises(Exception):
            ev.evaluate_config({"classifier": "no-such-model"})
        # the config never became a model, so nothing was stored
        assert ev.models == []


class TestDegenerateData:
    def test_constant_features(self):
        X = np.ones((120, 5))
        y = np.array([0, 1] * 60)
        system = FlamlSystem(**FAST)
        system.fit(X, y, budget_s=10)
        # nothing to learn: accuracy ~ chance, but no crash
        assert system.predict(X).shape == (120,)

    def test_tiny_dataset(self):
        X, y = make_classification(24, 3, 2, random_state=1)
        system = CamlSystem(**FAST)
        system.fit(X, y, budget_s=10)
        assert set(system.predict(X)).issubset({0, 1})

    def test_many_classes_few_rows(self):
        X, y = make_classification(80, 5, 8, random_state=2)
        system = CamlSystem(**FAST)
        system.fit(X, y, budget_s=20)
        assert system.score(X, y) > 1.0 / 8

    def test_single_feature(self):
        X, y = make_classification(150, 1, 2, n_informative=1,
                                   random_state=3)
        system = FlamlSystem(**FAST)
        system.fit(X, y, budget_s=10)
        assert system.predict(X).shape == (150,)

    def test_heavy_imbalance(self):
        X, y = make_classification(300, 6, 2, imbalance=0.85,
                                   random_state=4)
        system = CamlSystem(**FAST)
        system.fit(X, y, budget_s=15)
        # balanced accuracy must beat the all-majority baseline (0.5)
        assert system.score(X, y) > 0.5


class TestHostileConfigurations:
    def test_zero_time_scale_rejected(self):
        with pytest.raises(ValueError):
            CamlSystem(time_scale=0.0)

    def test_nan_labels_rejected(self, binary_data):
        X, y = binary_data
        system = CamlSystem(**FAST)
        with pytest.raises(Exception):
            system.fit(X, np.full(len(y), np.nan), budget_s=10)

    def test_mismatched_lengths_fail_loudly(self, binary_data):
        X, y = binary_data
        from repro.exceptions import BudgetExhaustedError, ReproError

        system = CamlSystem(**FAST)
        # every candidate evaluation fails, so the search must report a
        # budget-exhausted error rather than silently deploying nothing
        with pytest.raises((ValueError, ReproError, BudgetExhaustedError)):
            system.fit(X, y[:-5], budget_s=10)

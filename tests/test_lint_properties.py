"""Property tests for the lint reporters and the baseline multiset.

The reporter contract is order-independence: findings arrive from
per-file, project and dataflow passes in rule order, but every format
must render the identical byte stream for any permutation — that is
what makes CI diffs and the committed baseline stable.  The baseline
contract is multiset round-tripping: writing N copies of a fingerprint
and loading them back yields a Counter with count N, so fixing one of
two identical violations cannot hide a freshly introduced twin.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lint import (
    Finding,
    load_baseline,
    partition,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)
from repro.lint.core import SEVERITIES

_paths = st.sampled_from([
    "src/repro/a.py", "src/repro/b.py", "benchmarks/bench.py",
])
_codes = st.sampled_from([
    "GRN001", "GRN004", "GRN101", "GRN102", "GRN103", "GRN104",
])
_messages = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0, max_size=24,
)

findings = st.builds(
    Finding,
    path=_paths,
    line=st.integers(min_value=1, max_value=500),
    col=st.integers(min_value=0, max_value=80),
    code=_codes,
    message=_messages,
    severity=st.sampled_from(SEVERITIES),
)


@st.composite
def findings_with_permutation(draw):
    items = draw(st.lists(findings, max_size=8))
    shuffled = draw(st.permutations(items))
    return items, shuffled


class TestReporterStability:
    @given(findings_with_permutation(), findings_with_permutation())
    def test_text_is_permutation_invariant(self, new_pair, base_pair):
        new, new_shuffled = new_pair
        base, base_shuffled = base_pair
        assert render_text(new, base) == \
            render_text(new_shuffled, base_shuffled)

    @given(findings_with_permutation(), findings_with_permutation())
    def test_json_is_permutation_invariant(self, new_pair, base_pair):
        new, new_shuffled = new_pair
        base, base_shuffled = base_pair
        assert render_json(new, base) == \
            render_json(new_shuffled, base_shuffled)

    @given(findings_with_permutation(), findings_with_permutation())
    def test_sarif_is_permutation_invariant(self, new_pair, base_pair):
        new, new_shuffled = new_pair
        base, base_shuffled = base_pair
        assert render_sarif(new, base) == \
            render_sarif(new_shuffled, base_shuffled)

    @given(st.lists(findings, max_size=8))
    def test_text_lines_are_sorted(self, items):
        rendered = render_text(items, []).splitlines()[:-1]
        assert rendered == [
            line for _, line in sorted(
                zip(sorted(items), rendered), key=lambda p: p[0])
        ]


class TestBaselineMultiset:
    @settings(suppress_health_check=[
        HealthCheck.function_scoped_fixture])
    @given(st.lists(findings, max_size=10))
    def test_round_trip_preserves_the_multiset(self, tmp_path, items):
        target = tmp_path / "baseline.json"
        write_baseline(target, items)
        loaded = load_baseline(target)
        assert loaded == Counter(f.fingerprint() for f in items)

    @settings(suppress_health_check=[
        HealthCheck.function_scoped_fixture])
    @given(st.lists(findings, max_size=10))
    def test_round_trip_is_idempotent(self, tmp_path, items):
        first = tmp_path / "first.json"
        write_baseline(first, items)
        text_one = first.read_text()
        write_baseline(first, sorted(items, reverse=True))
        assert first.read_text() == text_one

    @given(st.lists(findings, max_size=10),
           st.lists(findings, max_size=10))
    def test_partition_is_a_partition(self, items, grandfathered):
        baseline = Counter(f.fingerprint() for f in grandfathered)
        new, old = partition(items, baseline)
        assert sorted(new + old) == sorted(items)
        # every baselined finding is actually covered by the budget
        used = Counter(f.fingerprint() for f in old)
        assert all(used[k] <= baseline[k] for k in used)

    @given(st.lists(findings, min_size=1, max_size=6))
    def test_duplicate_violations_need_duplicate_entries(self, items):
        doubled = items + items
        baseline = Counter(f.fingerprint() for f in items)
        new, old = partition(doubled, baseline)
        assert len(old) == len(items)
        assert len(new) == len(items)

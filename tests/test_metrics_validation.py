import numpy as np
import pytest

from repro.metrics import KFold, StratifiedKFold, cross_val_score, train_test_split
from repro.models import DecisionTreeClassifier


def test_train_test_split_sizes():
    X = np.arange(100).reshape(-1, 1).astype(float)
    y = np.array([0, 1] * 50)
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.34,
                                              random_state=0)
    assert len(X_te) == 34
    assert len(X_tr) == 66
    assert len(y_tr) == 66 and len(y_te) == 34


def test_train_test_split_stratified_keeps_classes():
    y = np.array([0] * 90 + [1] * 10)
    X = np.zeros((100, 2))
    _, _, y_tr, y_te = train_test_split(X, y, test_size=0.3, random_state=1)
    assert set(np.unique(y_tr)) == {0, 1}
    assert set(np.unique(y_te)) == {0, 1}


def test_train_test_split_no_overlap():
    X = np.arange(60).reshape(-1, 1).astype(float)
    y = np.array([0, 1, 2] * 20)
    X_tr, X_te, _, _ = train_test_split(X, y, random_state=2)
    assert not set(X_tr[:, 0]) & set(X_te[:, 0])
    assert len(X_tr) + len(X_te) == 60


def test_train_test_split_invalid_size():
    with pytest.raises(ValueError):
        train_test_split(np.zeros((4, 1)), [0, 1, 0, 1], test_size=1.5)


def test_train_test_split_unstratified():
    X = np.arange(20).reshape(-1, 1).astype(float)
    y = np.array([0, 1] * 10)
    X_tr, X_te, _, _ = train_test_split(X, y, stratify=False, random_state=0)
    assert len(X_tr) + len(X_te) == 20


def test_kfold_covers_everything_once():
    kf = KFold(5, random_state=0)
    X = np.zeros((23, 2))
    seen = []
    for train, test in kf.split(X):
        assert len(set(train) & set(test)) == 0
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(23))


def test_kfold_rejects_too_few_samples():
    with pytest.raises(ValueError):
        list(KFold(5).split(np.zeros((3, 1))))


def test_kfold_rejects_bad_n_splits():
    with pytest.raises(ValueError):
        KFold(1)


def test_stratified_kfold_balances_classes():
    y = np.array([0] * 40 + [1] * 10)
    X = np.zeros((50, 1))
    for train, test in StratifiedKFold(5, random_state=0).split(X, y):
        # every test fold should contain both classes
        assert set(np.unique(y[test])) == {0, 1}


def test_stratified_kfold_partition():
    y = np.array([0, 1, 2] * 10)
    X = np.zeros((30, 1))
    seen = []
    for train, test in StratifiedKFold(3, random_state=1).split(X, y):
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(30))


def test_cross_val_score_returns_per_fold(binary_data):
    X, y = binary_data
    scores = cross_val_score(
        DecisionTreeClassifier(max_depth=3, random_state=0), X, y,
        cv=StratifiedKFold(4, random_state=0),
    )
    assert scores.shape == (4,)
    assert np.all(scores > 0.5)   # better than chance on separable data

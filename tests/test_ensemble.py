"""Caruana selection, bagging (+refit), stacking."""

import numpy as np
import pytest

from repro.ensemble import BaggedModel, CaruanaEnsemble, StackingEnsemble
from repro.metrics import balanced_accuracy_score, train_test_split
from repro.models import (
    DecisionTreeClassifier,
    GaussianNB,
    LogisticRegression,
    RandomForestClassifier,
)


@pytest.fixture(scope="module")
def library(split_binary_module):
    X_tr, X_val, y_tr, y_val = split_binary_module
    models = [
        DecisionTreeClassifier(max_depth=3, random_state=0).fit(X_tr, y_tr),
        LogisticRegression().fit(X_tr, y_tr),
        GaussianNB().fit(X_tr, y_tr),
        RandomForestClassifier(n_estimators=10, random_state=0).fit(X_tr, y_tr),
    ]
    return models, X_tr, X_val, y_tr, y_val


@pytest.fixture(scope="module")
def split_binary_module():
    from repro.datasets import make_classification

    X, y = make_classification(240, 8, 2, class_sep=1.4, random_state=0)
    return train_test_split(X, y, test_size=0.3, random_state=2)


class TestCaruana:
    def test_weights_sum_to_one(self, library):
        models, _, X_val, _, y_val = library
        ens = CaruanaEnsemble(max_rounds=20).fit(models, X_val, y_val)
        assert ens.weights_.sum() == pytest.approx(1.0)
        assert np.all(ens.weights_ >= 0)

    def test_sorted_init_keeps_multiple_members(self, library):
        """O1's precondition: the selected ensemble has several members."""
        models, _, X_val, _, y_val = library
        ens = CaruanaEnsemble(max_rounds=20, sorted_init=3)
        ens.fit(models, X_val, y_val)
        assert ens.n_members >= 3

    def test_ensemble_at_least_as_good_as_on_val(self, library):
        models, _, X_val, _, y_val = library
        ens = CaruanaEnsemble(max_rounds=30).fit(models, X_val, y_val)
        solo = max(
            balanced_accuracy_score(y_val, m.predict(X_val)) for m in models
        )
        assert ens.val_score_ >= solo - 0.05

    def test_inference_flops_sum_members(self, library):
        models, _, X_val, _, y_val = library
        ens = CaruanaEnsemble(max_rounds=10).fit(models, X_val, y_val)
        expected = sum(m.inference_flops(50) for m in ens.members_)
        assert ens.inference_flops(50) == pytest.approx(expected)

    def test_predict_proba_normalised(self, library):
        models, _, X_val, _, y_val = library
        ens = CaruanaEnsemble(max_rounds=10).fit(models, X_val, y_val)
        proba = ens.predict_proba(X_val)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            CaruanaEnsemble().fit([], np.zeros((2, 2)), [0, 1])

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            CaruanaEnsemble(max_rounds=0)

    def test_partial_class_models_aligned(self, split_binary_module):
        """Models fit on subsets missing a class still ensemble correctly."""
        X_tr, X_val, y_tr, y_val = split_binary_module
        only0 = y_tr == 0
        m_partial = DecisionTreeClassifier(random_state=0).fit(
            X_tr[only0], y_tr[only0]
        )
        m_full = LogisticRegression().fit(X_tr, y_tr)
        ens = CaruanaEnsemble(max_rounds=5).fit(
            [m_partial, m_full], X_val, y_val
        )
        proba = ens.predict_proba(X_val)
        assert proba.shape == (len(X_val), 2)


class TestBagging:
    def test_oof_shape_and_coverage(self, split_binary_module):
        X_tr, _, y_tr, _ = split_binary_module
        bag = BaggedModel(
            DecisionTreeClassifier(max_depth=3, random_state=0),
            n_folds=4, random_state=0,
        ).fit(X_tr, y_tr)
        assert bag.oof_proba_.shape == (len(y_tr), 2)
        # every row received an out-of-fold prediction
        assert np.all(bag.oof_proba_.sum(axis=1) > 0.99)

    def test_one_model_per_fold(self, split_binary_module):
        X_tr, _, y_tr, _ = split_binary_module
        bag = BaggedModel(GaussianNB(), n_folds=5).fit(X_tr, y_tr)
        assert len(bag.fold_models_) == 5
        assert len(bag.ensemble_members) == 5

    def test_refit_collapses_to_single_model(self, split_binary_module):
        """Figure 6's AutoGluon refit: bag -> one model -> ~k-fold less
        inference energy."""
        X_tr, _, y_tr, _ = split_binary_module
        bag = BaggedModel(
            DecisionTreeClassifier(max_depth=4, random_state=0), n_folds=5
        ).fit(X_tr, y_tr)
        flops_before = bag.inference_flops(100)
        bag.refit(X_tr, y_tr)
        assert bag.is_refit
        assert len(bag.ensemble_members) == 1
        assert bag.inference_flops(100) < flops_before / 2

    def test_refit_preserves_predict_interface(self, split_binary_module):
        X_tr, X_te, y_tr, y_te = split_binary_module
        bag = BaggedModel(GaussianNB(), n_folds=3).fit(X_tr, y_tr)
        bag.refit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, bag.predict(X_te)) > 0.6

    def test_invalid_folds(self):
        with pytest.raises(ValueError):
            BaggedModel(GaussianNB(), n_folds=1)

    def test_bagged_accuracy_reasonable(self, split_binary_module):
        X_tr, X_te, y_tr, y_te = split_binary_module
        bag = BaggedModel(
            DecisionTreeClassifier(max_depth=4, random_state=0), n_folds=4
        ).fit(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, bag.predict(X_te)) > 0.7


class TestStacking:
    def _stack(self, X_tr, y_tr, **kw):
        base = [
            ("tree", DecisionTreeClassifier(max_depth=4, random_state=0)),
            ("nb", GaussianNB()),
            ("lr", LogisticRegression()),
        ]
        return StackingEnsemble(base, n_folds=3, **kw).fit(X_tr, y_tr)

    def test_two_layers_built(self, split_binary_module):
        X_tr, _, y_tr, _ = split_binary_module
        stack = self._stack(X_tr, y_tr)
        assert len(stack.layer1_) == 3
        assert 1 <= len(stack.layer2_) <= 3

    def test_accuracy(self, split_binary_module):
        X_tr, X_te, y_tr, y_te = split_binary_module
        stack = self._stack(X_tr, y_tr)
        assert balanced_accuracy_score(y_te, stack.predict(X_te)) > 0.75

    def test_inference_flops_counts_both_layers(self, split_binary_module):
        """O1: stacking carries every fold model of every layer."""
        X_tr, _, y_tr, _ = split_binary_module
        stack = self._stack(X_tr, y_tr)
        layer1 = sum(b.inference_flops(100) for b in stack.layer1_)
        assert stack.inference_flops(100) > layer1

    def test_no_stacking_mode(self, split_binary_module):
        X_tr, _, y_tr, _ = split_binary_module
        stack = self._stack(X_tr, y_tr, use_stacking=False)
        assert stack.layer2_ == []
        assert stack.final_models == stack.layer1_

    def test_refit_shrinks_members(self, split_binary_module):
        X_tr, _, y_tr, _ = split_binary_module
        stack = self._stack(X_tr, y_tr)
        n_before = len(stack.ensemble_members)
        stack.refit(X_tr, y_tr)
        assert len(stack.ensemble_members) < n_before

    def test_budget_cuts_layer1(self, split_binary_module):
        X_tr, _, y_tr, _ = split_binary_module
        base = [
            ("t1", DecisionTreeClassifier(max_depth=4, random_state=0)),
            ("t2", DecisionTreeClassifier(max_depth=5, random_state=1)),
            ("t3", DecisionTreeClassifier(max_depth=6, random_state=2)),
        ]
        stack = StackingEnsemble(
            base, n_folds=3, min_layer1=1, random_state=0
        ).fit(X_tr, y_tr, budget_left=lambda: -1.0)
        assert len(stack.layer1_) == 1   # only the mandatory minimum

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            StackingEnsemble([])

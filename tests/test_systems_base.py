"""systems.base internals: Deadline, PipelineEvaluator, FitResult."""

import time

import numpy as np
import pytest

from repro.exceptions import BudgetExhaustedError
from repro.systems.base import Deadline, FitResult, PipelineEvaluator


class TestDeadline:
    def test_left_decreases_only_when_charged(self):
        deadline = Deadline(1.0)
        first = deadline.left()
        time.sleep(0.01)   # wall time must NOT advance the simulated clock
        assert deadline.left() == first
        deadline.charge(0.25)
        assert deadline.left() == pytest.approx(0.75)

    def test_expired(self):
        assert Deadline(0.0).expired()
        deadline = Deadline(0.5)
        deadline.charge(0.5)
        assert deadline.expired()

    def test_not_expired(self):
        assert not Deadline(10.0).expired()

    def test_elapsed_accumulates_charges(self):
        deadline = Deadline(1.0)
        assert deadline.elapsed() == 0.0
        deadline.charge(0.1)
        deadline.charge(0.2)
        assert deadline.elapsed() == pytest.approx(0.3)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Deadline(1.0).charge(-0.1)


class TestFitResult:
    def _result(self, configured=10.0, actual=12.0):
        return FitResult(
            system="X", configured_seconds=configured,
            actual_seconds=actual, execution_kwh=1e-3,
            n_evaluations=5, best_val_score=0.8,
        )

    def test_overrun_ratio(self):
        assert self._result().overrun_ratio == pytest.approx(1.2)

    def test_overrun_zero_budget(self):
        assert self._result(configured=0.0).overrun_ratio == 1.0


class TestPipelineEvaluator:
    @pytest.fixture
    def data(self, binary_data):
        return binary_data

    def test_basic_evaluation(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, random_state=0)
        score, pipe = ev.evaluate_config(
            {"classifier": "gaussian_nb"})
        assert 0.0 <= score <= 1.0
        assert ev.n_evaluations == 1
        assert len(ev.models) == 1

    def test_keep_false_does_not_store(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, random_state=0)
        ev.evaluate_config({"classifier": "gaussian_nb"}, keep=False)
        assert ev.models == []

    def test_expired_deadline_raises(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, random_state=0)
        deadline = Deadline(0.0)
        time.sleep(0.001)
        with pytest.raises(BudgetExhaustedError):
            ev.evaluate_config({"classifier": "gaussian_nb"},
                               deadline=deadline)

    def test_sample_cap_limits_training(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, sample_cap=30, random_state=0)
        score, _ = ev.evaluate_config({"classifier": "decision_tree"})
        assert 0.0 <= score <= 1.0

    def test_resample_validation_changes_split(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, resample_validation=True,
                               random_state=0)
        a = ev._split()
        b = ev._split()
        assert not np.array_equal(a[3], b[3])

    def test_fixed_validation_caches_split(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, resample_validation=False,
                               random_state=0)
        a = ev._split()
        b = ev._split()
        assert a is b

    def test_invalid_holdout(self, data):
        X, y = data
        with pytest.raises(ValueError):
            PipelineEvaluator(X, y, holdout_fraction=1.5)

    def test_top_models_sorted(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, random_state=0)
        for clf in ("gaussian_nb", "decision_tree", "ridge"):
            ev.evaluate_config({"classifier": clf})
        top = ev.top_models(2)
        assert len(top) == 2
        scores = sorted((s for s, _ in ev.models), reverse=True)
        best_score, best_model = ev.best
        assert best_score == scores[0]

    def test_refit_on_all_uses_everything(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, random_state=0)
        pipe = ev.refit_on_all({"classifier": "gaussian_nb"})
        assert pipe.predict(X).shape == y.shape

    def test_eval_time_cap_marks_failure(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, eval_time_cap=0.0, random_state=0)
        score, _ = ev.evaluate_config({"classifier": "gaussian_nb"})
        assert score == -1.0   # charged but scored as a failure

    def test_train_idx_subsets(self, data):
        X, y = data
        ev = PipelineEvaluator(X, y, random_state=0)
        score, _ = ev.evaluate_config(
            {"classifier": "gaussian_nb"}, train_idx=np.arange(20),
        )
        assert 0.0 <= score <= 1.0

"""Shared fixtures: small, fast synthetic classification problems."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.metrics import train_test_split


@pytest.fixture(scope="session")
def binary_data():
    """A linearly-separable-ish binary problem."""
    X, y = make_classification(240, 8, 2, class_sep=1.6, random_state=0)
    return X, y


@pytest.fixture(scope="session")
def multiclass_data():
    """A 4-class problem with mild nonlinearity."""
    X, y = make_classification(
        320, 10, 4, class_sep=1.6, nonlinearity=0.3, random_state=1
    )
    return X, y


@pytest.fixture(scope="session")
def split_binary(binary_data):
    X, y = binary_data
    return train_test_split(X, y, test_size=0.3, random_state=2)


@pytest.fixture(scope="session")
def split_multiclass(multiclass_data):
    X, y = multiclass_data
    return train_test_split(X, y, test_size=0.3, random_state=3)


@pytest.fixture
def rng():
    return np.random.default_rng(42)

"""Shared fixtures: small, fast synthetic classification problems —
plus the golden-file compare helper the regression tests use."""

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.metrics import train_test_split

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _compare_golden(actual, expected, rtol, atol, path):
    """Recursive equality with float tolerance; raises AssertionError
    naming the JSON path of the first mismatch."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys differ: {sorted(actual)} != {sorted(expected)}"
        )
        for key in expected:
            _compare_golden(actual[key], expected[key], rtol, atol,
                            f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected array"
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != {len(expected)}"
        )
        for i, (a, e) in enumerate(zip(actual, expected)):
            _compare_golden(a, e, rtol, atol, f"{path}[{i}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert isinstance(actual, (int, float)), f"{path}: expected number"
        assert math.isclose(actual, expected,
                            rel_tol=rtol, abs_tol=atol), (
            f"{path}: {actual} != {expected} "
            f"(rtol={rtol}, atol={atol})"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def assert_matches_golden(name, payload, *, rtol=1e-9, atol=1e-12):
    """Compare a JSON-able payload against ``tests/goldens/<name>``.

    Set ``REPRO_REGEN_GOLDENS=1`` to rewrite the golden from the current
    payload instead of comparing (commit the diff deliberately).
    Floats compare with tolerance so a benign cross-platform ulp
    difference does not fail the regression.
    """
    path = GOLDEN_DIR / name
    serialised = json.loads(json.dumps(payload))   # normalise tuples etc.
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(serialised, indent=2, sort_keys=True) + "\n"
        )
        return
    assert path.exists(), (
        f"golden {name} missing — run with REPRO_REGEN_GOLDENS=1 to "
        f"create it, then commit the file"
    )
    expected = json.loads(path.read_text())
    _compare_golden(serialised, expected, rtol, atol, name)


@pytest.fixture(scope="session")
def binary_data():
    """A linearly-separable-ish binary problem."""
    X, y = make_classification(240, 8, 2, class_sep=1.6, random_state=0)
    return X, y


@pytest.fixture(scope="session")
def multiclass_data():
    """A 4-class problem with mild nonlinearity."""
    X, y = make_classification(
        320, 10, 4, class_sep=1.6, nonlinearity=0.3, random_state=1
    )
    return X, y


@pytest.fixture(scope="session")
def split_binary(binary_data):
    X, y = binary_data
    return train_test_split(X, y, test_size=0.3, random_state=2)


@pytest.fixture(scope="session")
def split_multiclass(multiclass_data):
    X, y = multiclass_data
    return train_test_split(X, y, test_size=0.3, random_state=3)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def golden():
    """The golden-file compare helper, as a fixture so test modules can
    use it without importing from conftest."""
    return assert_matches_golden

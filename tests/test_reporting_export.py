"""Targeted coverage for the text-rendering helpers
(:mod:`repro.analysis.reporting`) and the raw-result CSV round-trip
(:mod:`repro.experiments.export`)."""

import csv
import math

import pytest

from repro.analysis.reporting import ascii_scatter, bootstrap_mean, format_table
from repro.experiments.export import (
    export_aggregate_csv,
    export_raw_csv,
    load_raw_csv,
)
from repro.experiments.results import ResultsStore, RunRecord


# --------------------------------------------------------------------------- #
# reporting
# --------------------------------------------------------------------------- #
class TestFormatTable:
    def test_aligns_columns_and_formats_floats(self):
        text = format_table(
            ["system", "kwh"],
            [["TabPFN", 0.123456], ["AutoGluon", 1.0]],
        )
        lines = text.splitlines()
        assert len(lines) == 4                       # header, rule, 2 rows
        assert len({len(line) for line in lines}) == 1   # all same width
        assert "0.1235" in text                      # default {:.4g}
        assert lines[0].startswith("system")

    def test_nan_renders_as_dash(self):
        text = format_table(["v"], [[float("nan")]])
        assert text.splitlines()[-1].strip() == "-"

    def test_empty_rows_keeps_header(self):
        text = format_table(["a", "bb"], [])
        assert "a" in text and "bb" in text
        assert len(text.splitlines()) == 2

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in text and "0.1235" not in text


class TestAsciiScatter:
    def test_plots_markers_axes_and_legend(self):
        text = ascii_scatter(
            {"TabPFN": [(1.0, 0.8), (10.0, 0.9)],
             "CAML": [(1.0, 0.7)]},
            xlabel="budget", ylabel="acc",
        )
        assert "T" in text and "C" in text
        assert "x: budget" in text and "y: acc" in text
        assert "T=TabPFN" in text and "C=CAML" in text

    def test_log_axes_label_decades(self):
        text = ascii_scatter(
            {"s": [(1.0, 1.0), (1000.0, 100.0)]}, logx=True, logy=True,
        )
        assert "(log)" in text
        assert "[1 .. 1e+03]" in text

    def test_degenerate_single_point(self):
        # zero span in both axes must not divide by zero
        text = ascii_scatter({"s": [(5.0, 5.0)]})
        assert "S" in text

    def test_no_data(self):
        assert ascii_scatter({}) == "(no data)"


class TestBootstrapMean:
    def test_constant_values_have_zero_std(self):
        mean, std = bootstrap_mean([2.0, 2.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.0)

    def test_deterministic_for_fixed_seed(self):
        values = [0.1, 0.4, 0.7, 0.9]
        assert bootstrap_mean(values) == bootstrap_mean(values)

    def test_mean_close_to_sample_mean_and_std_positive(self):
        values = [0.0, 1.0, 2.0, 3.0, 4.0]
        mean, std = bootstrap_mean(values, n_boot=500)
        assert mean == pytest.approx(2.0, abs=0.2)
        assert std > 0.0

    def test_empty_input_is_nan(self):
        mean, std = bootstrap_mean([])
        assert math.isnan(mean) and math.isnan(std)


# --------------------------------------------------------------------------- #
# export
# --------------------------------------------------------------------------- #
def _record(system="TabPFN", dataset="credit-g", budget=10.0, seed=0,
            acc=0.8, failed=False):
    return RunRecord(
        system=system, dataset=dataset, configured_seconds=budget,
        seed=seed, balanced_accuracy=acc, execution_kwh=0.001 * (seed + 1),
        actual_seconds=budget * 0.9,
        inference_kwh_per_instance=1e-7,
        inference_seconds_per_instance=1e-3,
        n_evaluations=3 + seed, failed=failed,
        note="timeout" if failed else "",
    )


@pytest.fixture
def small_store():
    store = ResultsStore()
    store.add(_record(seed=0))
    store.add(_record(seed=1, acc=0.9))
    store.add(_record(system="CAML", seed=0, acc=0.7, failed=True))
    return store


class TestRawCsvRoundTrip:
    def test_row_count_and_header(self, small_store, tmp_path):
        path = tmp_path / "raw.csv"
        assert export_raw_csv(small_store, path) == 3
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 4
        assert rows[0][:4] == ["system", "dataset",
                               "configured_seconds", "seed"]

    def test_load_inverts_export_exactly(self, small_store, tmp_path):
        path = tmp_path / "raw.csv"
        export_raw_csv(small_store, path)
        loaded = load_raw_csv(path)
        assert loaded.records == small_store.records

    def test_types_survive_the_round_trip(self, small_store, tmp_path):
        path = tmp_path / "raw.csv"
        export_raw_csv(small_store, path)
        record = load_raw_csv(path).records[-1]
        assert isinstance(record.seed, int)
        assert isinstance(record.configured_seconds, float)
        assert record.failed is True
        assert record.note == "timeout"


class TestAggregateCsv:
    def test_one_row_per_populated_cell(self, small_store, tmp_path):
        path = tmp_path / "agg.csv"
        assert export_aggregate_csv(small_store, path) == 2
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        by_system = {row["system"]: row for row in rows}
        assert set(by_system) == {"TabPFN", "CAML"}
        tabpfn = by_system["TabPFN"]
        assert int(tabpfn["n_runs"]) == 2
        assert float(tabpfn["balanced_accuracy_mean"]) \
            == pytest.approx(0.85)
        assert int(tabpfn["n_failures"]) == 0
        assert int(by_system["CAML"]["n_failures"]) == 1

    def test_empty_store_writes_header_only(self, tmp_path):
        path = tmp_path / "agg.csv"
        assert export_aggregate_csv(ResultsStore(), path) == 0
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 1

"""Energy substrate: machines, RAPL counter, tracker, cost model, CO2,
parallel model."""

import time

import numpy as np
import pytest

from repro.energy import (
    CO2_KG_PER_KWH,
    DEFAULT_MACHINE,
    EUR_PER_KWH,
    EnergyTracker,
    JOULES_PER_KWH,
    MachineProfile,
    RaplCounter,
    T4_GPU,
    XEON_GOLD_6132,
    XEON_T4_MACHINE,
    amdahl_speedup,
    budget_bound_execution,
    co2_kg,
    cost_eur,
    estimate_inference,
    get_machine,
    gpu_supported_fraction,
    kwh_per_prediction,
    parallel_execution,
)
from repro.exceptions import ReproError


class TestMachines:
    def test_power_grows_with_cores(self):
        m = XEON_GOLD_6132
        assert m.power(8) > m.power(1) > m.power(0)

    def test_power_rejects_invalid_core_count(self):
        with pytest.raises(ValueError):
            XEON_GOLD_6132.power(29)
        with pytest.raises(ValueError):
            XEON_GOLD_6132.power(-1)

    def test_energy_kwh_linearity_in_time(self):
        m = XEON_GOLD_6132
        assert m.energy_kwh(20.0, 2) == pytest.approx(2 * m.energy_kwh(10.0, 2))

    def test_energy_rejects_negative_time(self):
        with pytest.raises(ValueError):
            XEON_GOLD_6132.energy_kwh(-1.0)

    def test_gpu_idle_charged_when_attached(self):
        with_gpu = XEON_T4_MACHINE.power(1, gpu_active=False)
        active = XEON_T4_MACHINE.power(1, gpu_active=True)
        assert active - with_gpu == pytest.approx(
            T4_GPU.active_watts - T4_GPU.idle_watts
        )

    def test_get_machine(self):
        assert get_machine("xeon-gold-6132") is XEON_GOLD_6132
        with pytest.raises(ValueError):
            get_machine("cray-1")

    def test_paper_machine_shapes(self):
        assert XEON_GOLD_6132.n_cores == 28
        assert XEON_T4_MACHINE.n_cores == 8
        assert XEON_T4_MACHINE.gpu is not None


class TestRaplCounter:
    def test_counter_increases_with_work(self):
        counter = RaplCounter(XEON_GOLD_6132)
        _ = sum(i * i for i in range(400_000))   # burn CPU
        sample = counter.read()
        assert sample.package_joules > 0
        assert sample.total_joules >= sample.package_joules

    def test_inject_joules(self):
        counter = RaplCounter(XEON_GOLD_6132)
        before = counter.read().total_joules
        counter.inject_joules(package=100.0, dram=10.0, gpu=5.0)
        after = counter.read()
        assert after.total_joules - before >= 115.0 - 1e-6

    def test_inject_rejects_negative(self):
        with pytest.raises(ValueError):
            RaplCounter().inject_joules(package=-1.0)

    def test_kwh_conversion(self):
        counter = RaplCounter()
        counter.inject_joules(package=JOULES_PER_KWH)
        assert counter.read_kwh() >= 1.0


class TestTracker:
    def test_context_manager_produces_report(self):
        with EnergyTracker() as tracker:
            _ = sum(i * i for i in range(200_000))
        rep = tracker.report
        assert rep.kwh > 0
        assert rep.duration_s > 0
        assert rep.machine == DEFAULT_MACHINE.name

    def test_double_start_rejected(self):
        tracker = EnergyTracker().start()
        with pytest.raises(ReproError):
            tracker.start()
        tracker.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ReproError):
            EnergyTracker().stop()

    def test_report_addition(self):
        with EnergyTracker() as t1:
            time.sleep(0.005)
        with EnergyTracker() as t2:
            time.sleep(0.005)
        total = t1.report + t2.report
        assert total.kwh == pytest.approx(t1.report.kwh + t2.report.kwh)

    def test_report_addition_requires_same_machine(self):
        with EnergyTracker() as t1:
            pass
        with EnergyTracker(machine=XEON_T4_MACHINE) as t2:
            pass
        with pytest.raises(ValueError):
            _ = t1.report + t2.report

    def test_co2_and_cost_derived(self):
        with EnergyTracker() as t:
            _ = sum(range(100_000))
        assert t.report.co2_kg == pytest.approx(
            t.report.kwh * CO2_KG_PER_KWH
        )
        assert t.report.cost_eur == pytest.approx(t.report.kwh * EUR_PER_KWH)


class TestCo2:
    def test_paper_constants(self):
        # Germany 0.222 kg/kWh, EU 0.20 EUR/kWh (paper Sec 3.6)
        assert CO2_KG_PER_KWH == 0.222
        assert EUR_PER_KWH == 0.20

    def test_conversions(self):
        assert co2_kg(10) == pytest.approx(2.22)
        assert cost_eur(10) == pytest.approx(2.0)

    def test_reject_negative(self):
        with pytest.raises(ValueError):
            co2_kg(-1)
        with pytest.raises(ValueError):
            cost_eur(-1)

    def test_custom_intensity(self):
        assert co2_kg(1.0, intensity=0.5) == 0.5


class TestCostModel:
    def _models(self, split_binary):
        from repro.models import LogisticRegression, RandomForestClassifier

        X_tr, _, y_tr, _ = split_binary
        lr = LogisticRegression().fit(X_tr, y_tr)
        rf = RandomForestClassifier(n_estimators=30, random_state=0)
        rf.fit(X_tr, y_tr)
        return lr, rf

    def test_estimate_scales_with_samples(self, split_binary):
        lr, _ = self._models(split_binary)
        small = estimate_inference(lr, 100)
        big = estimate_inference(lr, 1000)
        assert big.kwh == pytest.approx(10 * small.kwh)

    def test_forest_more_expensive_than_linear(self, split_binary):
        lr, rf = self._models(split_binary)
        assert (
            estimate_inference(rf, 1000).kwh
            > estimate_inference(lr, 1000).kwh
        )

    def test_gpu_speeds_up_pfn(self, split_binary):
        from repro.models import PriorFittedNetwork

        X_tr, _, y_tr, _ = split_binary
        pfn = PriorFittedNetwork().fit(X_tr, y_tr)
        cpu = estimate_inference(pfn, 1000, XEON_T4_MACHINE, use_gpu=False)
        gpu = estimate_inference(pfn, 1000, XEON_T4_MACHINE, use_gpu=True)
        # Table 3: both time and energy drop hard on the GPU
        assert gpu.seconds < 0.3 * cpu.seconds
        assert gpu.kwh < 0.5 * cpu.kwh

    def test_gpu_hurts_tree_ensembles(self, split_binary):
        _, rf = self._models(split_binary)
        cpu = estimate_inference(rf, 1000, XEON_T4_MACHINE, use_gpu=False)
        gpu = estimate_inference(rf, 1000, XEON_T4_MACHINE, use_gpu=True)
        # trees barely use the GPU; idle draw makes things worse
        assert gpu.kwh > cpu.kwh * 0.9

    def test_gpu_fraction_lookup(self, split_binary):
        lr, rf = self._models(split_binary)
        assert gpu_supported_fraction(rf) == pytest.approx(0.10)
        assert gpu_supported_fraction(lr) == 0.0

    def test_kwh_per_prediction_positive(self, split_binary):
        lr, _ = self._models(split_binary)
        assert kwh_per_prediction(lr) > 0

    def test_negative_samples_rejected(self, split_binary):
        lr, _ = self._models(split_binary)
        with pytest.raises(ValueError):
            estimate_inference(lr, -5)


class TestParallelModel:
    def test_amdahl_identity(self):
        assert amdahl_speedup(0.9, 1) == 1.0

    def test_amdahl_bounds(self):
        assert amdahl_speedup(0.5, 1000) < 2.001
        assert amdahl_speedup(1.0, 8) == pytest.approx(8.0)

    def test_amdahl_invalid(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)

    def test_more_cores_less_time(self):
        one = parallel_execution(100.0, 1, 0.85)
        eight = parallel_execution(100.0, 8, 0.85)
        assert eight.wall_seconds < one.wall_seconds

    def test_budget_bound_energy_sublinear_in_cores(self):
        """Fig 5 / O4: a budget-bound search (CAML) on 8 cores costs more
        energy than on 1 core, but well under 8x."""
        one = budget_bound_execution(100.0, 1, 0.25)
        eight = budget_bound_execution(100.0, 8, 0.25)
        ratio = eight.kwh / one.kwh
        assert 1.5 < ratio < 4.0   # the paper measures ~2.7x for CAML

    def test_budget_bound_wall_time_is_budget(self):
        run = budget_bound_execution(60.0, 4, 0.25)
        assert run.wall_seconds == 60.0

    def test_budget_bound_invalid(self):
        with pytest.raises(ValueError):
            budget_bound_execution(-1.0, 2, 0.5)
        with pytest.raises(ValueError):
            budget_bound_execution(1.0, 99, 0.5)

    def test_parallel_workload_saves_energy_on_many_cores(self):
        """AutoGluon's bagging: multi-core is *more* energy efficient."""
        one = parallel_execution(100.0, 1, 0.95)
        eight = parallel_execution(100.0, 8, 0.95)
        assert eight.kwh < one.kwh

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            parallel_execution(-1.0, 2, 0.5)
        with pytest.raises(ValueError):
            parallel_execution(1.0, 2, 0.5, cache_reuse=1.0)

"""CAML extensions: early stopping (Sec 3.8) and the soft CO2-aware
objective (Sec 1, ref [47])."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.systems import CamlConstraints, CamlSystem

FAST = dict(time_scale=0.004, random_state=0)


@pytest.fixture(scope="module")
def ds():
    return load_dataset("kc1")   # small dataset, the overfit-prone kind


class TestEarlyStopping:
    def test_early_stop_saves_energy(self, ds):
        # at 5min the kc1 search has long converged (Table 6's overfitting
        # regime), so stopping on a stale incumbent saves real energy
        full = CamlSystem(**FAST)
        full.fit(ds.X_train, ds.y_train, budget_s=300,
                 categorical_mask=ds.categorical_mask)
        early = CamlSystem(early_stop_rounds=3, **FAST)
        early.fit(ds.X_train, ds.y_train, budget_s=300,
                  categorical_mask=ds.categorical_mask)
        assert (
            early.fit_result_.execution_kwh
            < full.fit_result_.execution_kwh
        )
        assert (
            early.fit_result_.actual_seconds
            < full.fit_result_.actual_seconds
        )

    def test_early_stop_accuracy_within_noise(self, ds):
        full = CamlSystem(**FAST)
        full.fit(ds.X_train, ds.y_train, budget_s=60,
                 categorical_mask=ds.categorical_mask)
        early = CamlSystem(early_stop_rounds=5, **FAST)
        early.fit(ds.X_train, ds.y_train, budget_s=60,
                  categorical_mask=ds.categorical_mask)
        assert early.score(ds.X_test, ds.y_test) >= (
            full.score(ds.X_test, ds.y_test) - 0.12
        )

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            CamlSystem(early_stop_rounds=0)

    def test_still_produces_model(self, ds):
        system = CamlSystem(early_stop_rounds=1, **FAST)
        system.fit(ds.X_train, ds.y_train, budget_s=30,
                   categorical_mask=ds.categorical_mask)
        assert system.predict(ds.X_test).shape == ds.y_test.shape


class TestEnergyObjective:
    def test_weight_steers_to_greener_models(self, ds):
        inf = []
        for weight in (0.0, 0.5):
            kwhs = []
            for seed in range(3):
                system = CamlSystem(
                    constraints=CamlConstraints(
                        energy_objective_weight=weight),
                    time_scale=0.004, random_state=seed,
                )
                system.fit(ds.X_train, ds.y_train, budget_s=30,
                           categorical_mask=ds.categorical_mask)
                kwhs.append(system.inference_kwh_per_instance())
            inf.append(np.mean(kwhs))
        assert inf[1] <= inf[0] * 1.5   # greener or comparable, never wilder

    def test_zero_weight_is_noop_adjustment(self, ds):
        system = CamlSystem(**FAST)
        assert system._energy_adjusted(0.7, None) == 0.7

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CamlConstraints(energy_objective_weight=-1.0)

    def test_penalty_monotone_in_energy(self, ds):
        system = CamlSystem(
            constraints=CamlConstraints(energy_objective_weight=1.0),
            **FAST,
        )
        system.fit(ds.X_train, ds.y_train, budget_s=20,
                   categorical_mask=ds.categorical_mask)

        class _Fake:
            def __init__(self, flops):
                self._f = flops

            def inference_flops(self, n):
                return self._f * n

        cheap = system._energy_adjusted(0.8, _Fake(10.0))
        pricey = system._energy_adjusted(0.8, _Fake(1e9))
        assert cheap > pricey

"""Tests for the synthetic generator, Table 2 registry and loaders."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    DEV_POOL_SIZE,
    compute_metafeatures,
    dev_pool_specs,
    get_spec,
    list_datasets,
    load_dataset,
    load_suite,
    make_classification,
    METAFEATURE_NAMES,
)
from repro.exceptions import DatasetError


class TestMakeClassification:
    def test_shapes(self):
        X, y = make_classification(100, 7, 3, random_state=0)
        assert X.shape == (100, 7)
        assert y.shape == (100,)

    def test_all_classes_present(self):
        _, y = make_classification(60, 5, 4, imbalance=0.6, random_state=1)
        assert set(np.unique(y)) == {0, 1, 2, 3}

    def test_every_class_at_least_twice(self):
        _, y = make_classification(
            40, 4, 5, imbalance=0.8, random_state=2
        )
        _, counts = np.unique(y, return_counts=True)
        assert counts.min() >= 2

    def test_deterministic(self):
        X1, y1 = make_classification(50, 4, 2, random_state=5)
        X2, y2 = make_classification(50, 4, 2, random_state=5)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)

    def test_different_seeds_differ(self):
        X1, _ = make_classification(50, 4, 2, random_state=5)
        X2, _ = make_classification(50, 4, 2, random_state=6)
        assert not np.array_equal(X1, X2)

    def test_class_sep_affects_separability(self):
        from repro.models import LogisticRegression

        for sep, lo, hi in ((0.1, 0.3, 0.9), (3.0, 0.9, 1.01)):
            X, y = make_classification(400, 6, 2, class_sep=sep,
                                       random_state=3)
            acc = LogisticRegression().fit(X, y).score(X, y)
            assert lo <= acc <= hi

    def test_categorical_columns_are_small_ints(self):
        X, _ = make_classification(200, 6, 2, n_categorical=2,
                                   random_state=4)
        for col in (4, 5):
            vals = np.unique(X[:, col])
            assert len(vals) <= 8
            assert np.allclose(vals, np.round(vals))

    def test_label_noise_reduces_fit(self):
        from repro.models import DecisionTreeClassifier

        X0, y0 = make_classification(300, 6, 2, label_noise=0.0,
                                     random_state=7)
        Xn, yn = make_classification(300, 6, 2, label_noise=0.4,
                                     random_state=7)
        tree = DecisionTreeClassifier(max_depth=3, random_state=0)
        acc_clean = tree.fit(X0, y0).score(X0, y0)
        acc_noisy = DecisionTreeClassifier(
            max_depth=3, random_state=0).fit(Xn, yn).score(Xn, yn)
        assert acc_noisy < acc_clean

    @pytest.mark.parametrize("kwargs", [
        dict(n_samples=1, n_classes=2),
        dict(n_classes=1),
        dict(label_noise=1.0),
        dict(imbalance=1.0),
        dict(n_features=3, n_categorical=4),
    ])
    def test_invalid_arguments(self, kwargs):
        base = dict(n_samples=50, n_features=5, n_classes=2)
        base.update(kwargs)
        with pytest.raises(ValueError):
            make_classification(**base)


class TestRegistry:
    def test_39_datasets(self):
        assert len(list_datasets()) == 39
        assert len(DATASET_REGISTRY) == 39

    def test_table2_metadata_preserved(self):
        spec = get_spec("covertype")
        assert spec.openml_id == 1596
        assert spec.paper_instances == 581012
        assert spec.paper_features == 54
        assert spec.paper_classes == 7

    def test_scaled_sizes_bounded(self):
        for name in list_datasets():
            spec = get_spec(name)
            assert 100 <= spec.n_samples <= 1500
            assert 2 <= spec.n_features <= 64
            assert 2 <= spec.n_classes <= 12

    def test_class_limit_effect_preserved(self):
        # dionis (355) and helena (100 classes) must stay above TabPFN's 10
        assert get_spec("dionis").n_classes > 10
        assert get_spec("helena").n_classes > 10

    def test_row_ordering_roughly_preserved(self):
        big = get_spec("covertype").n_samples       # 581k rows
        small = get_spec("credit-g").n_samples      # 1k rows
        assert big > small

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            get_spec("not-a-dataset")

    def test_dev_pool_size_and_binary(self):
        specs = dev_pool_specs()
        assert len(specs) == DEV_POOL_SIZE == 124
        assert all(s.n_classes == 2 for s in specs)
        assert all(s.is_dev_pool for s in specs)

    def test_dev_pool_deterministic(self):
        a = dev_pool_specs(5)
        b = dev_pool_specs(5)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.seed for s in a] == [s.seed for s in b]


class TestLoaders:
    def test_split_is_66_34(self):
        ds = load_dataset("credit-g")
        total = len(ds.y_train) + len(ds.y_test)
        assert total == ds.spec.n_samples
        assert abs(len(ds.y_test) / total - 0.34) < 0.05

    def test_cached_load_same_object(self):
        a = load_dataset("vehicle")
        b = load_dataset("vehicle")
        assert a is b

    def test_split_seed_changes_split(self):
        a = load_dataset("vehicle", split_seed=0)
        b = load_dataset("vehicle", split_seed=1)
        assert not np.array_equal(a.y_train, b.y_train)

    def test_load_suite_subset(self):
        suite = load_suite(["credit-g", "kc1"])
        assert [d.name for d in suite] == ["credit-g", "kc1"]

    def test_subsample_caps_training(self):
        ds = load_dataset("segment")
        sub = ds.subsample(50, random_state=0)
        assert len(sub.y_train) <= 56   # per-class rounding slack
        assert np.array_equal(sub.X_test, ds.X_test)

    def test_subsample_noop_when_large(self):
        ds = load_dataset("credit-g")
        assert ds.subsample(10**6) is ds

    def test_categorical_mask_matches_spec(self):
        for name in ("car", "credit-g"):
            ds = load_dataset(name)
            assert ds.categorical_mask.sum() == ds.spec.n_categorical


class TestMetafeatures:
    def test_vector_length_matches_names(self, binary_data):
        X, y = binary_data
        mf = compute_metafeatures(X, y)
        assert mf.shape == (len(METAFEATURE_NAMES),)

    def test_values_finite(self, multiclass_data):
        X, y = multiclass_data
        assert np.all(np.isfinite(compute_metafeatures(X, y)))

    def test_class_count_reported(self, multiclass_data):
        X, y = multiclass_data
        mf = compute_metafeatures(X, y)
        assert mf[METAFEATURE_NAMES.index("n_classes")] == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_metafeatures(np.zeros((0, 3)), np.array([]))

"""Experiment harness: config, store, runner, figure/table builders."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.experiments import (
    ExperimentConfig,
    ResultsStore,
    RunRecord,
    SMOKE_CONFIG,
    figure3,
    figure4,
    run_grid,
    run_single,
    table1,
    table2,
    table4,
    table6,
    table7,
)


def _record(system="CAML", dataset="credit-g", budget=10.0, seed=0,
            acc=0.8, exec_kwh=1e-3, actual=11.0, inf=1e-13, **kw):
    return RunRecord(
        system=system, dataset=dataset, configured_seconds=budget,
        seed=seed, balanced_accuracy=acc, execution_kwh=exec_kwh,
        actual_seconds=actual, inference_kwh_per_instance=inf,
        inference_seconds_per_instance=1e-6, **kw,
    )


class TestConfig:
    def test_paper_grid_dimensions(self):
        config = ExperimentConfig()
        assert len(config.systems) == 7
        assert len(config.datasets) == 39
        assert config.budgets == (10.0, 30.0, 60.0, 300.0)
        assert config.n_runs == 10
        assert config.n_cells == 7 * 39 * 4 * 10

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(systems=())


class TestStore:
    def _store(self):
        store = ResultsStore()
        store.add(_record(acc=0.8, seed=0))
        store.add(_record(acc=0.9, seed=1))
        store.add(_record(system="FLAML", acc=0.7))
        store.add(_record(dataset="kc1", acc=0.5))
        return store

    def test_filtering(self):
        store = self._store()
        assert len(store.filter(system="CAML")) == 3
        assert len(store.filter(dataset="kc1")) == 1
        assert len(store.filter(system="FLAML", budget=10.0)) == 1

    def test_properties(self):
        store = self._store()
        assert store.systems == ["CAML", "FLAML"]
        assert store.budgets == [10.0]
        assert set(store.datasets) == {"credit-g", "kc1"}

    def test_mean_over_runs_averages_datasets(self):
        store = self._store()
        mean = store.mean_over_runs("balanced_accuracy", system="CAML",
                                    budget=10.0)
        # credit-g mean ~0.85, kc1 0.5 -> overall ~0.675
        assert 0.6 < mean < 0.75

    def test_dataset_scores(self):
        store = self._store()
        scores = store.dataset_scores(system="CAML", budget=10.0)
        assert scores["kc1"] == pytest.approx(0.5)

    def test_save_load_roundtrip(self, tmp_path):
        store = self._store()
        path = tmp_path / "results.json"
        store.save(path)
        loaded = ResultsStore.load(path)
        assert len(loaded) == len(store)
        assert loaded.records[0].system == store.records[0].system

    def test_failed_excluded_when_asked(self):
        store = ResultsStore()
        store.add(_record(failed=True))
        store.add(_record())
        assert len(store.filter(include_failed=False)) == 1


class TestRunner:
    def test_run_single_produces_record(self):
        ds = load_dataset("credit-g")
        rec = run_single("CAML", ds, 10.0, seed=0, time_scale=0.004)
        assert rec.system == "CAML"
        assert rec.balanced_accuracy > 0.5
        assert rec.execution_kwh > 0
        assert not rec.failed

    def test_tabpfn_fails_gracefully_on_many_classes(self):
        ds = load_dataset("helena")   # 12 classes after scaling
        rec = run_single("TabPFN", ds, 10.0, seed=0, time_scale=0.004)
        assert rec.failed
        assert rec.balanced_accuracy <= 0.6   # prior baseline
        assert "classes" in rec.note

    def test_run_grid_smoke(self):
        store = run_grid(SMOKE_CONFIG)
        # 3 systems x 2 datasets x 2 budgets x 2 runs
        assert len(store) == 24
        assert set(store.systems) == {"CAML", "FLAML", "TabPFN"}

    def test_run_grid_skips_unsupported_budgets(self):
        config = ExperimentConfig(
            systems=("AutoSklearn1",), datasets=("credit-g",),
            budgets=(10.0,), n_runs=1, time_scale=0.004,
        )
        store = run_grid(config)
        assert len(store) == 0   # ASKL needs >= 30s


class TestFigureBuilders:
    @pytest.fixture(scope="class")
    def store(self):
        store = ResultsStore()
        for system, inf in (("CAML", 1e-13), ("TabPFN", 5e-11),
                            ("AutoGluon", 1e-12)):
            for budget in (10.0, 30.0):
                for seed in (0, 1):
                    store.add(_record(
                        system=system, budget=budget, seed=seed,
                        acc=0.7 + 0.05 * (budget == 30.0), inf=inf,
                        exec_kwh=(1e-6 if system == "TabPFN" else 1e-3),
                    ))
        return store

    def test_figure3_points(self, store):
        fig = figure3(store)
        assert len(fig.points) == 6   # 3 systems x 2 budgets
        text = fig.render()
        assert "execution stage" in text and "inference stage" in text

    def test_figure4_crossover_tabpfn(self, store):
        fig = figure4(store)
        assert ("TabPFN", "CAML") in fig.crossovers
        n = fig.crossovers[("TabPFN", "CAML")]
        assert n > 0
        # TabPFN wins below the crossover, loses above (O2)
        assert fig.winner_at(n / 10) == "TabPFN"
        assert fig.winner_at(n * 100) != "TabPFN"

    def test_figure4_render(self, store):
        assert "crossover" in figure4(store).render()


class TestTableBuilders:
    def test_table1_matches_paper_matrix(self):
        text = table1()
        assert "warm starting" in text
        assert "predefined pipelines" in text
        assert "genetic programming" in text
        assert "unweighted ensemble" in text

    def test_table2_lists_39(self):
        text = table2()
        assert "covertype" in text
        assert "581012" in text
        assert len([l for l in text.splitlines() if "|" in l]) >= 40

    def test_table4_sorted_and_converted(self):
        store = ResultsStore()
        for system, inf in (("TabPFN", 5e-11), ("FLAML", 1e-13)):
            store.add(_record(system=system, inf=inf))
        t4 = table4(store)
        assert t4.rows[0].system == "TabPFN"
        assert t4.rows[0].energy_kwh == pytest.approx(5e-11 * 1e12)
        assert "Table 4" in t4.render()

    def test_table6_counts_overfitting(self):
        store = ResultsStore()
        for ds, acc60, acc300 in (("a", 0.8, 0.7), ("b", 0.6, 0.9)):
            store.add(_record(dataset=ds, budget=60.0, acc=acc60))
            store.add(_record(dataset=ds, budget=300.0, acc=acc300))
        reports, text = table6(store)
        assert reports[0].n_overfit == 1
        assert "a" in reports[0].overfit_datasets
        assert "Table 6" in text

    def test_table7_formats_rows(self):
        store = ResultsStore()
        store.add(_record(actual=10.5))
        store.add(_record(system="AutoGluon", actual=22.0))
        rows, text = table7(store)
        assert any(r.system == "AutoGluon" for r in rows)
        assert "Table 7" in text

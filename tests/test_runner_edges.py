"""Runner edge cases: failure records, GPU cells, system kwargs."""

import pytest

from repro.datasets import load_dataset
from repro.experiments import run_single
from repro.systems import CamlParameters


def test_system_kwargs_forwarded():
    ds = load_dataset("credit-g")
    params = CamlParameters(classifiers=["gaussian_nb"])
    rec = run_single(
        "CAML", ds, 10.0, seed=0, time_scale=0.004,
        system_kwargs={"params": params},
    )
    assert not rec.failed
    assert rec.balanced_accuracy > 0.5


def test_gpu_cell_records_flag():
    ds = load_dataset("credit-g")
    rec = run_single("TabPFN", ds, 10.0, seed=0, time_scale=0.004,
                     use_gpu=True)
    assert rec.used_gpu
    assert rec.inference_kwh_per_instance > 0


def test_multicore_cell_records_cores():
    ds = load_dataset("credit-g")
    rec = run_single("CAML", ds, 10.0, seed=0, time_scale=0.004, n_cores=4)
    assert rec.n_cores == 4


def test_budget_below_minimum_raises():
    ds = load_dataset("credit-g")
    with pytest.raises(ValueError, match="below"):
        run_single("TPOT", ds, 10.0, seed=0, time_scale=0.004)


def test_failure_record_scores_prior():
    ds = load_dataset("dionis")   # >10 classes after scaling
    rec = run_single("TabPFN", ds, 10.0, seed=0, time_scale=0.004)
    assert rec.failed
    assert rec.execution_kwh == 0.0
    # prior baseline on a 12-class problem: bacc ~ 1/12
    assert rec.balanced_accuracy < 0.3

"""PriorFittedNetwork — the TabPFN stand-in."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.exceptions import ConfigurationError
from repro.models import PriorFittedNetwork


def test_fits_small_table_well(split_binary):
    X_tr, X_te, y_tr, y_te = split_binary
    pfn = PriorFittedNetwork().fit(X_tr, y_tr)
    assert pfn.score(X_te, y_te) > 0.7


def test_rejects_more_than_10_classes():
    X, y = make_classification(300, 6, 12, random_state=0)
    with pytest.raises(ConfigurationError, match="10 classes"):
        PriorFittedNetwork().fit(X, y)


def test_accepts_exactly_10_classes():
    X, y = make_classification(400, 8, 10, random_state=1)
    pfn = PriorFittedNetwork().fit(X, y)
    assert pfn.predict(X[:5]).shape == (5,)


def test_no_training_happens_weights_are_fixed(split_binary):
    """The 'pre-trained' weights must not depend on the data."""
    X_tr, _, y_tr, _ = split_binary
    a = PriorFittedNetwork().fit(X_tr, y_tr)
    b = PriorFittedNetwork().fit(X_tr[::-1] * 3.0, y_tr[::-1])
    for wa, wb in zip(a._weights, b._weights):
        assert np.array_equal(wa, wb)


def test_inference_flops_grow_with_support_size():
    X, y = make_classification(900, 6, 2, random_state=2)
    small = PriorFittedNetwork().fit(X[:100], y[:100])
    big = PriorFittedNetwork().fit(X, y)
    assert big.inference_flops(10) > small.inference_flops(10)


def test_inference_flops_dominate_cheap_models(split_binary):
    from repro.models import LogisticRegression

    X_tr, _, y_tr, _ = split_binary
    pfn = PriorFittedNetwork().fit(X_tr, y_tr)
    lr = LogisticRegression().fit(X_tr, y_tr)
    # the paper's core asymmetry: orders of magnitude more inference compute
    assert pfn.inference_flops(100) > 100 * lr.inference_flops(100)


def test_degrades_beyond_meta_training_domain():
    """Outside its 1k-row training domain the prediction blends to the prior."""
    X, y = make_classification(3000, 6, 2, class_sep=2.5, random_state=3)
    inside = PriorFittedNetwork().fit(X[:500], y[:500])
    outside = PriorFittedNetwork().fit(X, y)
    p_in = inside.predict_proba(X[:100]).max(axis=1).mean()
    p_out = outside.predict_proba(X[:100]).max(axis=1).mean()
    assert p_out < p_in  # less confident out of domain


def test_proba_normalised(split_multiclass):
    X_tr, X_te, y_tr, _ = split_multiclass
    pfn = PriorFittedNetwork().fit(X_tr, y_tr)
    proba = pfn.predict_proba(X_te)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_wide_input_truncated():
    X, y = make_classification(150, 10, 2, random_state=4)
    X_wide = np.hstack([X, np.zeros((150, 200))])
    pfn = PriorFittedNetwork(max_features=100).fit(X_wide, y)
    assert pfn.predict(X_wide[:5]).shape == (5,)

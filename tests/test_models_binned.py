"""Histogram-binned tree kernels: equivalence, weights, cached depth.

The binned builder is opt-in (``binning=<max_bins>``); ``binning=None``
must leave the exact sort-based path bit-identical, and the binned path
must agree with the exact path up to quantization tolerance while
honouring ``min_samples_leaf`` exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import make_classification
from repro.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    ExtraTreesClassifier,
    FeatureBinner,
    GradientBoostingClassifier,
    RandomForestClassifier,
)

FAST = settings(max_examples=25, deadline=None)


def _data(n=600, d=8, k=3, seed=0):
    return make_classification(
        n, d, k, class_sep=1.5, random_state=seed
    )


class TestFeatureBinner:
    def test_codes_respect_edges(self):
        X, _ = _data()
        binner = FeatureBinner(max_bins=16).fit(X)
        Xb = binner.transform(X)
        assert Xb.dtype == np.uint8
        assert (Xb < binner.n_bins_[None, :]).all()
        # split identity: v <= edges[j][t]  <=>  code <= t
        j, t = 3, 4
        edges = binner.edges_[j]
        assert len(edges) >= t + 1
        np.testing.assert_array_equal(
            X[:, j] <= edges[t], Xb[:, j] <= t
        )

    def test_small_cardinality_features_are_lossless(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 7, size=(300, 4)).astype(float)
        binner = FeatureBinner(max_bins=32).fit(X)
        Xb = binner.transform(X)
        # one code per distinct value: binning loses nothing
        assert all(
            len(np.unique(Xb[:, j])) == len(np.unique(X[:, j]))
            for j in range(4)
        )

    def test_max_bins_validation(self):
        X, _ = _data()
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=1).fit(X)
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=256).fit(X)


class TestBinnedEquivalence:
    def test_tree_binned_close_to_exact(self):
        X, y = _data(800)
        Xt, yt = _data(400, seed=1)
        exact = DecisionTreeClassifier(max_depth=8, random_state=0)
        binned = DecisionTreeClassifier(
            max_depth=8, random_state=0, binning=255
        )
        acc_e = exact.fit(X, y).score(Xt, yt)
        acc_b = binned.fit(X, y).score(Xt, yt)
        assert abs(acc_e - acc_b) < 0.05
        agree = (exact.predict(Xt) == binned.predict(Xt)).mean()
        assert agree > 0.85

    def test_regressor_binned_close_to_exact(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(800, 6))
        y = X[:, 0] * 2 + np.sin(X[:, 1]) + 0.05 * rng.normal(size=800)
        Xt = rng.normal(size=(300, 6))
        exact = DecisionTreeRegressor(max_depth=8, random_state=0)
        binned = DecisionTreeRegressor(
            max_depth=8, random_state=0, binning=255
        )
        pe = exact.fit(X, y).predict(Xt)
        pb = binned.fit(X, y).predict(Xt)
        assert np.corrcoef(pe, pb)[0, 1] > 0.99

    def test_binning_none_is_bit_identical_to_exact(self):
        X, y = _data(500)
        base = DecisionTreeClassifier(max_depth=6, random_state=0)
        none = DecisionTreeClassifier(
            max_depth=6, random_state=0, binning=None
        )
        base.fit(X, y)
        none.fit(X, y)
        np.testing.assert_array_equal(
            base.tree_.threshold[: base.tree_.n_nodes],
            none.tree_.threshold[: none.tree_.n_nodes],
        )
        np.testing.assert_array_equal(
            base.predict_proba(X), none.predict_proba(X)
        )

    @pytest.mark.parametrize("cls,kwargs", [
        (RandomForestClassifier, {"n_estimators": 10}),
        (ExtraTreesClassifier, {"n_estimators": 10}),
        (GradientBoostingClassifier, {"n_estimators": 10, "max_depth": 3}),
    ])
    def test_ensembles_binned_close_to_exact(self, cls, kwargs):
        X, y = _data(600)
        Xt, yt = _data(300, seed=1)
        acc_e = cls(random_state=0, **kwargs).fit(X, y).score(Xt, yt)
        acc_b = cls(random_state=0, binning=255, **kwargs) \
            .fit(X, y).score(Xt, yt)
        assert abs(acc_e - acc_b) < 0.08

    def test_predict_binned_matches_predict(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 5))
        y = X[:, 0] - X[:, 2] + 0.1 * rng.normal(size=400)
        binner = FeatureBinner(255).fit(X)
        tree = DecisionTreeRegressor(max_depth=5, random_state=0)
        tree.fit_binned(binner.transform(X), y, binner.edges_)
        np.testing.assert_allclose(
            tree.predict_binned(binner.transform(X)), tree.predict(X)
        )

    @given(
        seed=st.integers(0, 10_000),
        min_leaf=st.integers(1, 30),
        max_bins=st.integers(2, 64),
    )
    @FAST
    def test_binned_splits_respect_min_samples_leaf(
        self, seed, min_leaf, max_bins
    ):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2 * min_leaf, 200))
        X = rng.normal(size=(n, 3))
        X[:, 1] = rng.integers(0, 4, size=n)  # low-cardinality column
        y = rng.integers(0, 3, size=n)
        tree = DecisionTreeClassifier(
            min_samples_leaf=min_leaf, binning=max_bins, random_state=0
        ).fit(X, y)
        t = tree.tree_
        leaf_rows = np.bincount(t.apply(X), minlength=t.n_nodes)
        leaves = t.feature[: t.n_nodes] == -1
        assert leaf_rows[leaves].min() >= min_leaf


class TestSampleWeight:
    def test_weighted_differs_from_unweighted(self):
        # weights silently dropped would make these trees identical
        X, y = _data(500, seed=2)
        w = np.where(y == 0, 20.0, 1.0)
        plain = DecisionTreeClassifier(max_depth=5, random_state=0) \
            .fit(X, y)
        weighted = DecisionTreeClassifier(max_depth=5, random_state=0) \
            .fit(X, y, sample_weight=w)
        assert (plain.predict(X) != weighted.predict(X)).any()
        # upweighting class 0 must not lower its recall
        mask = y == 0
        assert (weighted.predict(X)[mask] == 0).mean() \
            >= (plain.predict(X)[mask] == 0).mean()

    def test_unit_weights_match_no_weights_exactly(self):
        X, y = _data(400, seed=3)
        for binning in (None, 64):
            a = DecisionTreeClassifier(
                max_depth=6, random_state=0, binning=binning
            ).fit(X, y)
            b = DecisionTreeClassifier(
                max_depth=6, random_state=0, binning=binning
            ).fit(X, y, sample_weight=np.ones(len(y)))
            np.testing.assert_array_equal(
                a.predict_proba(X), b.predict_proba(X)
            )

    def test_weighted_binned_close_to_weighted_exact(self):
        X, y = _data(600, seed=4)
        rng = np.random.default_rng(4)
        w = rng.uniform(0.1, 5.0, size=len(y))
        exact = DecisionTreeClassifier(max_depth=6, random_state=0) \
            .fit(X, y, sample_weight=w)
        binned = DecisionTreeClassifier(
            max_depth=6, random_state=0, binning=255
        ).fit(X, y, sample_weight=w)
        agree = (exact.predict(X) == binned.predict(X)).mean()
        assert agree > 0.9

    def test_regressor_weight_moves_leaf_means(self):
        X = np.asarray([[0.0], [0.0], [1.0], [1.0]])
        y = np.asarray([0.0, 1.0, 0.0, 1.0])
        w = np.asarray([1.0, 3.0, 3.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=1, random_state=0) \
            .fit(X, y, sample_weight=w)
        np.testing.assert_allclose(tree.predict(X), [0.75, 0.75, 0.25,
                                                     0.25])

    def test_invalid_weights_raise(self):
        X, y = _data(100)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_weight=np.ones(3))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                X, y, sample_weight=-np.ones(len(y))
            )
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                X, y, sample_weight=np.zeros(len(y))
            )


class TestCachedDepth:
    def test_max_depth_is_cached_not_recomputed(self):
        X, y = _data(300)
        tree = DecisionTreeClassifier(max_depth=4, random_state=0) \
            .fit(X, y)
        t = tree.tree_
        assert t.max_depth() == t.max_depth_
        # the cached value is authoritative: no per-call node walk
        t.max_depth_ = 999
        assert t.max_depth() == 999

    def test_cached_depth_matches_node_walk(self):
        X, y = _data(400, seed=5)
        for binning in (None, 32):
            tree = DecisionTreeClassifier(random_state=0, binning=binning) \
                .fit(X, y)
            t = tree.tree_
            walked = int(t.depth[: t.n_nodes].max())
            assert t.max_depth() == walked

"""Campaign-level chaos: seeded fault-injection runs through the real
executor, and the invariants the `repro chaos` harness enforces."""

import warnings
from dataclasses import asdict

from repro.experiments import ExperimentConfig, grid_cells
from repro.faults import (
    SEAM_CELL_ERROR,
    SEAM_RAPL_READ,
    SEAM_WORKER_DEATH,
    FailureRecord,
    FaultPlan,
)
from repro.runtime import CampaignExecutor, CampaignJournal, RetryPolicy
from repro.runtime.chaos import run_chaos_campaign

#: a small serial-friendly grid: 1 system x 1 dataset x 4 runs
SMALL = ExperimentConfig(
    systems=("CAML",), datasets=("kc1",), budgets=(10.0,),
    n_runs=4, time_scale=0.004,
)


def _run_serial_chaos(plan: FaultPlan, journal_path=None):
    executor = CampaignExecutor(
        workers=1,
        journal=(CampaignJournal(journal_path)
                 if journal_path is not None else None),
        policy=RetryPolicy(max_retries=1),
        fault_plan=plan,
    )
    store = executor.run(grid_cells(SMALL))
    return executor, store


class TestSerialChaos:
    def test_same_seed_replays_identical_fault_sequence(self):
        ledgers, payloads = [], []
        for _ in range(2):
            plan = FaultPlan.uniform(
                3, (SEAM_CELL_ERROR, SEAM_RAPL_READ), 0.5,
            )
            executor, store = _run_serial_chaos(
                FaultPlan.from_json(plan.to_json())
            )
            ledgers.append(sorted(executor.fault_events))
            payloads.append([asdict(r) for r in store.records])
        assert ledgers[0] == ledgers[1]
        assert ledgers[0]   # rate 0.5 over 4+ keys must fire
        assert payloads[0] == payloads[1]

    def test_injected_errors_quarantine_with_structured_notes(self):
        plan = FaultPlan.uniform(0, (SEAM_CELL_ERROR,), 1.0)
        executor, store = _run_serial_chaos(plan)
        assert len(store) == 4
        assert all(r.failed for r in store.records)
        assert all(FailureRecord.is_structured_note(r.note)
                   for r in store.records)
        assert all("cell_error" in r.note for r in store.records)

    def test_rapl_faults_flag_survivors_as_estimated(self):
        plan = FaultPlan.uniform(0, (SEAM_RAPL_READ,), 1.0)
        _, chaotic = _run_serial_chaos(plan)
        _, reference = _run_serial_chaos(FaultPlan(seed=0))
        assert all(r.energy_source == "estimated"
                   for r in chaotic.records)
        assert all(r.energy_source == "measured"
                   for r in reference.records)
        for got, want in zip(chaotic.records, reference.records):
            masked = {k: v for k, v in asdict(got).items()
                      if k != "energy_source"}
            assert masked == {k: v for k, v in asdict(want).items()
                              if k != "energy_source"}

    def test_serial_worker_death_degrades_to_retryable_error(self):
        # without a pool there is no process to kill: the seam degrades
        # to an injected error outcome instead of taking the run down
        plan = FaultPlan.uniform(0, (SEAM_WORKER_DEATH,), 1.0)
        executor, store = _run_serial_chaos(plan)
        assert len(store) == 4
        assert all(r.failed for r in store.records)
        assert executor.fault_counts[SEAM_WORKER_DEATH] >= 4

    def test_journal_failures_carry_structured_payloads(self, tmp_path):
        plan = FaultPlan.uniform(0, (SEAM_CELL_ERROR,), 1.0)
        path = tmp_path / "chaos.jsonl"
        _run_serial_chaos(plan, journal_path=path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            state = CampaignJournal.load(path)
        assert state.fault_plan == plan.to_dict()
        assert state.failures
        assert all(isinstance(e.get("failure"), dict)
                   for e in state.failures)
        assert all(r.injected and r.seam == SEAM_CELL_ERROR
                   for r in state.failure_records())


class TestChaosHarness:
    def test_pooled_chaos_campaign_holds_every_invariant(self, tmp_path):
        report = run_chaos_campaign(
            0, tmp_path, workers=2, delay_s=1.2, cell_timeout_s=0.6,
        )
        assert report.ok, report.render()
        assert report.n_cells == 20
        assert sum(report.fault_counts.values()) >= 2
        assert len(report.fault_counts) >= 4
        # the evaluation-store invariant rides along: corrupted store
        # entries must degrade to warned misses, never poison queries
        assert any(check.name == "store-corruption-degrades"
                   for check in report.checks)

    def test_cli_parser_wires_chaos(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["chaos", "--seeds", "0", "1", "--workers", "2"]
        )
        assert args.seeds == [0, 1]
        assert args.workers == 2
        assert args.func.__name__ == "_cmd_chaos"

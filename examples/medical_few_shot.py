"""Scenario: rare-disease diagnosis with few predictions (paper Sec 1).

'Predicting whether a patient has a specific kind of cancer might happen far
less often, and thus, the focus could be on execution efficiency.'  With few
labelled cases and few future predictions, the paper's Figure 4 says the
zero-shot TabPFN is the most energy-efficient choice — up to a crossover
where its per-prediction transformer cost overtakes a searched cheap model.

This example measures that crossover on a small clinical-sized dataset.
"""

import numpy as np

from repro import (
    TaskRequirements,
    balanced_accuracy_score,
    load_dataset,
    make_system,
    recommend,
)
from repro.analysis import (
    SystemEnergyProfile,
    cheapest_system,
    crossover_point,
    format_table,
)

BUDGET_S = 10.0   # ad-hoc exploration budget


def main() -> None:
    # blood-transfusion: 748 paper rows, 2 classes — a clinical-sized table
    ds = load_dataset("blood-transfusion-service-center")

    rec = recommend(TaskRequirements(
        search_budget_s=BUDGET_S, n_classes=ds.n_classes,
    ))
    print(f"guideline recommendation for a {BUDGET_S:.0f}s budget: "
          f"{rec.system} — {rec.reason}\n")

    profiles = []
    rows = []
    for name in ("TabPFN", "CAML", "FLAML"):
        system = make_system(name, random_state=0)
        system.fit(ds.X_train, ds.y_train, budget_s=BUDGET_S,
                   categorical_mask=ds.categorical_mask)
        acc = balanced_accuracy_score(ds.y_test, system.predict(ds.X_test))
        profile = SystemEnergyProfile(
            system=name,
            execution_kwh=system.fit_result_.execution_kwh,
            inference_kwh_per_instance=system.inference_kwh_per_instance(),
        )
        profiles.append(profile)
        rows.append([name, acc, profile.execution_kwh,
                     profile.inference_kwh_per_instance])

    print(format_table(
        ["system", "bal.acc", "execution kWh", "inference kWh/inst"], rows,
    ))

    tab = next(p for p in profiles if p.system == "TabPFN")
    crossings = {
        p.system: crossover_point(tab, p)
        for p in profiles if p.system != "TabPFN"
    }
    crossings = {s: n for s, n in crossings.items() if n}
    print()
    for scale in (100, 1_000, 10_000, 1_000_000):
        winner = cheapest_system(profiles, scale)
        print(f"cheapest total energy at {scale:>9,} predictions: "
              f"{winner.system}")
    if crossings:
        system, n = min(crossings.items(), key=lambda kv: kv[1])
        print(
            f"\nTabPFN stops being optimal after ~{n:,.0f} predictions "
            f"(vs {system}); the paper measured ~26k on its testbed (O2)."
        )


if __name__ == "__main__":
    main()

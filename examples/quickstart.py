"""Quickstart: run one AutoML system on one benchmark dataset and read its
full energy bill.

Usage::

    python examples/quickstart.py [system] [dataset] [budget_seconds]

e.g. ``python examples/quickstart.py CAML credit-g 30``.
"""

import sys

from repro import balanced_accuracy_score, load_dataset, make_system
from repro.energy import co2_kg, cost_eur


def main(system_name: str = "CAML", dataset_name: str = "credit-g",
         budget_s: float = 30.0) -> None:
    ds = load_dataset(dataset_name)
    print(f"dataset: {ds.name}  "
          f"(train {ds.X_train.shape}, test {ds.X_test.shape}, "
          f"{ds.n_classes} classes; paper-scale "
          f"{ds.spec.paper_instances}x{ds.spec.paper_features})")

    automl = make_system(system_name, random_state=0)
    automl.fit(ds.X_train, ds.y_train, budget_s=budget_s,
               categorical_mask=ds.categorical_mask)

    acc = balanced_accuracy_score(ds.y_test, automl.predict(ds.X_test))
    fr = automl.fit_result_
    inf = automl.inference_estimate(100_000)

    print(f"\n{system_name} with a {budget_s:.0f}s search budget:")
    print(f"  balanced accuracy      : {acc:.3f}")
    print(f"  pipelines evaluated    : {fr.n_evaluations}")
    print(f"  actual execution time  : {fr.actual_seconds:.1f}s "
          f"(overrun x{fr.overrun_ratio:.2f})")
    print(f"  execution energy       : {fr.execution_kwh:.6f} kWh")
    print(f"  deployed ensemble size : {automl.n_ensemble_members} model(s)")
    print(f"  inference energy       : "
          f"{inf.kwh_per_instance:.3e} kWh/instance")
    print(f"  100k predictions       : {inf.kwh:.3e} kWh "
          f"= {co2_kg(inf.kwh) * 1000:.3e} g CO2 "
          f"= {cost_eur(inf.kwh) * 100:.3e} cents")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if len(args) > 0 else "CAML",
        args[1] if len(args) > 1 else "credit-g",
        float(args[2]) if len(args) > 2 else 30.0,
    )

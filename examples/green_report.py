"""Generate a full 'Green AutoML' report for one dataset: every system, all
three stages (execution, inference, and — for context — the paper's
development-stage numbers), plus a guideline recommendation.

Usage::

    python examples/green_report.py [dataset]
"""

import sys

from repro import (
    Priority,
    TaskRequirements,
    balanced_accuracy_score,
    load_dataset,
    make_system,
    recommend,
)
from repro.analysis import (
    SystemEnergyProfile,
    ascii_scatter,
    format_table,
    trillion_prediction_costs,
)
from repro.systems import SYSTEM_REGISTRY

BUDGET_S = 60.0


def main(dataset_name: str = "credit-g") -> None:
    ds = load_dataset(dataset_name)
    print(f"=== Green AutoML report: {ds.name} "
          f"({ds.n_classes} classes, train {ds.X_train.shape}) ===\n")

    rows = []
    profiles = []
    exec_points = {}
    inf_points = {}
    for name in SYSTEM_REGISTRY:
        system = make_system(name, random_state=0)
        if BUDGET_S < system.min_budget_s:
            continue
        try:
            system.fit(ds.X_train, ds.y_train, budget_s=BUDGET_S,
                       categorical_mask=ds.categorical_mask)
        except Exception as exc:   # e.g. TabPFN with >10 classes
            rows.append([name, float("nan"), float("nan"), float("nan"),
                         0, f"failed: {exc}"])
            continue
        acc = balanced_accuracy_score(ds.y_test, system.predict(ds.X_test))
        fr = system.fit_result_
        inf = system.inference_kwh_per_instance()
        rows.append([name, acc, fr.execution_kwh, inf,
                     system.n_ensemble_members, ""])
        profiles.append(SystemEnergyProfile(name, fr.execution_kwh, inf))
        exec_points[name] = [(fr.execution_kwh, acc)]
        inf_points[name] = [(inf, acc)]

    rows.sort(key=lambda r: -(r[1] if r[1] == r[1] else -1))
    print(format_table(
        ["system", "bal.acc", "exec kWh", "inference kWh/inst",
         "#models", "note"], rows,
    ))

    print("\n[execution energy vs accuracy]")
    print(ascii_scatter(exec_points, logx=True,
                        xlabel="execution kWh", ylabel="balanced accuracy"))
    print("\n[inference energy vs accuracy]")
    print(ascii_scatter(inf_points, logx=True,
                        xlabel="inference kWh/instance",
                        ylabel="balanced accuracy"))

    print("\n[trillion-prediction projection — paper Table 4]")
    t4 = trillion_prediction_costs(profiles)
    print(format_table(
        ["system", "kWh", "kg CO2", "EUR"],
        [[r.system, r.energy_kwh, r.co2_kg, r.cost_eur] for r in t4],
        float_fmt="{:,.2f}",
    ))

    print("\n[Pareto front: accuracy vs inference energy]")
    from repro.analysis import ParetoPoint, pareto_front

    points = [
        ParetoPoint(p.system, next(r[1] for r in rows if r[0] == p.system),
                    p.inference_kwh_per_instance)
        for p in profiles
    ]
    front = {q.label for q in pareto_front(points)}
    for q in sorted(points, key=lambda q: q.energy):
        status = "PARETO" if q.label in front else "dominated"
        print(f"  {q.label:14s} acc={q.accuracy:.3f} "
              f"kWh/inst={q.energy:.2e}  [{status}]")

    print("\n[guideline — paper Figure 8]")
    for priority in Priority:
        rec = recommend(TaskRequirements(
            search_budget_s=BUDGET_S, n_classes=ds.n_classes,
            priority=priority,
        ))
        print(f"  priority {priority.value:15s} -> {rec.system}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "credit-g")

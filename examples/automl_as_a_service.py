"""Scenario: AutoML-as-a-service (paper Sec 3.7).

A cloud provider runs AutoML thousands of times on customer datasets.  The
paper shows that investing energy in the *development stage* — tuning the
AutoML system's own parameters on representative datasets — pays for itself
after ~885 executions and then saves energy on every run.

This example runs the whole loop at laptop scale: select representative
datasets from the 124-dataset pool, tune CAML's AutoML parameters with BO +
median pruning, and report the amortisation point.
"""

from repro import CamlParameters, balanced_accuracy_score, load_dataset
from repro.analysis import format_table
from repro.devtuning import DevelopmentTuner, select_representative_datasets
from repro.systems import CamlSystem

BUDGET_S = 10.0


def main() -> None:
    representatives = select_representative_datasets(k=5)
    print("representative tuning datasets (of the 124-dataset pool):")
    for spec in representatives:
        print(f"  {spec.name}: paper-scale {spec.paper_instances} rows x "
              f"{spec.paper_features} features")

    tuner = DevelopmentTuner(
        search_budget_s=BUDGET_S, top_k=5, n_bo_iterations=8,
        runs_per_dataset=2, random_state=0, time_scale=0.01,
    )
    result = tuner.tune()

    params = result.best_parameters
    print(f"\ntuned AutoML parameters for a {BUDGET_S:.0f}s budget "
          f"(development energy: {result.development_energy.kwh:.4f} kWh, "
          f"{result.n_trials} BO trials, "
          f"{sum(t.pruned for t in result.trials)} pruned):")
    print(f"  classifier space     : {', '.join(params.classifiers)}")
    print(f"  holdout fraction     : {params.holdout_fraction:.2f}")
    print(f"  evaluation fraction  : {params.evaluation_fraction:.2f}")
    print(f"  sampling cap         : {params.sample_cap}")
    print(f"  refit / resample / incremental: "
          f"{params.refit} / {params.resample_validation} / "
          f"{params.incremental_training}")

    # benchmark tuned vs default CAML on held-out test datasets
    rows = []
    savings = []
    for name in ("credit-g", "phoneme", "Australian"):
        ds = load_dataset(name)
        cell = {}
        for label, p in (("default", CamlParameters()), ("tuned", params)):
            system = CamlSystem(params=p, random_state=1, time_scale=0.01)
            system.fit(ds.X_train, ds.y_train, budget_s=BUDGET_S,
                       categorical_mask=ds.categorical_mask)
            acc = balanced_accuracy_score(
                ds.y_test, system.predict(ds.X_test))
            cell[label] = (acc, system.fit_result_.execution_kwh)
        savings.append(cell["default"][1] - cell["tuned"][1])
        rows.append([
            name, cell["default"][0], cell["tuned"][0],
            cell["default"][1], cell["tuned"][1],
        ])
    print()
    print(format_table(
        ["dataset", "default acc", "tuned acc",
         "default exec kWh", "tuned exec kWh"], rows,
    ))

    mean_saving = sum(savings) / len(savings)
    if mean_saving > 0:
        runs = result.development_energy.kwh / mean_saving
        print(f"\ntuning amortises after ~{runs:,.0f} AutoML executions "
              f"(paper: 885 for its 21 kWh / 5min-budget tuning run).")
    else:
        print("\ntuned configuration saved no execution energy on this "
              "holdout; at this scale the default was already budget-bound "
              "(the paper's savings come from pruned search spaces at much "
              "larger budgets).")


if __name__ == "__main__":
    main()

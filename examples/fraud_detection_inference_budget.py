"""Scenario: fraud detection on millions of bank transactions (paper Sec 1).

'Running a fraud detection model on millions of bank transactions might
require a focus on inference energy consumption.'  This example plays that
scenario end-to-end:

1. pick the guideline's recommendation for an inference-heavy task,
2. train CAML with progressively tighter inference-time constraints,
3. compare against AutoGluon (accuracy-first) and its refit preset,
4. deploy the winner through ``repro.serving``: export its deployment
   variants to a content-addressed artifact store, replay a seeded
   heavy-tail sample of the transaction stream through the batched
   prediction server, and let the SLO router hold a joules-per-prediction
   target — then project the yearly energy / CO2 / cost of 10M
   predictions a day from the *measured* serving numbers.
"""

import tempfile

from repro import (
    CamlConstraints,
    Priority,
    TaskRequirements,
    balanced_accuracy_score,
    load_dataset,
    make_system,
    recommend,
)
from repro.analysis import SystemEnergyProfile, format_table
from repro.energy import JOULES_PER_KWH, co2_kg, cost_eur
from repro.serving import (
    ArtifactStore,
    LoadProfile,
    export_system,
    run_loadtest,
)

PREDICTIONS_PER_DAY = 10_000_000
BUDGET_S = 60.0
#: seeded stand-in for one burst of the live transaction stream
LOADTEST_REQUESTS = 5000


def evaluate(name, system, ds):
    system.fit(ds.X_train, ds.y_train, budget_s=BUDGET_S,
               categorical_mask=ds.categorical_mask)
    acc = balanced_accuracy_score(ds.y_test, system.predict(ds.X_test))
    profile = SystemEnergyProfile(
        system=name,
        execution_kwh=system.fit_result_.execution_kwh,
        inference_kwh_per_instance=system.inference_kwh_per_instance(),
    )
    return acc, profile


def serve_through_the_stack(system, ds):
    """Export the trained winner and loadtest it with and without an SLO."""
    with tempfile.TemporaryDirectory() as td:
        store = ArtifactStore(td)
        manifests = export_system(store, system, ds)
        artifacts = {}
        for variant, manifest in manifests.items():
            loaded = store.load(manifest.artifact_id)
            if loaded is not None:
                artifacts[variant] = loaded

        costs = sorted(a.manifest.joules_per_prediction
                       for a in artifacts.values())
        target = (costs[0] + costs[-1]) / 2
        profile = LoadProfile(n_requests=LOADTEST_REQUESTS,
                              joule_cap_fraction=0.0)
        relaxed, _ = run_loadtest(artifacts, profile, seed=0,
                                  X_pool=ds.X_test)
        tight, _ = run_loadtest(artifacts, profile, seed=0,
                                target_j_per_pred=target,
                                X_pool=ds.X_test)
        return relaxed, tight, target


def yearly_row(label, report):
    """Project a year of 10M/day from one measured serving report."""
    yearly_kwh = (report.joules_per_prediction / JOULES_PER_KWH
                  * PREDICTIONS_PER_DAY * 365)
    mix = " ".join(f"{v}:{n}"
                   for v, n in sorted(report.variant_mix.items()))
    return [label, f"{report.joules_per_prediction:.3e}",
            f"{report.slo_miss_rate:.3f}", mix,
            yearly_kwh, co2_kg(yearly_kwh), cost_eur(yearly_kwh)]


def main() -> None:
    # 'bank-marketing' stands in for the transaction stream (45k paper rows)
    ds = load_dataset("bank-marketing")

    rec = recommend(TaskRequirements(
        search_budget_s=BUDGET_S, n_classes=ds.n_classes,
        priority=Priority.FAST_INFERENCE,
    ))
    print(f"guideline recommendation: {rec.system} — {rec.reason}\n")

    candidates = {
        "FLAML (guideline pick)": make_system("FLAML", random_state=0),
        "CAML (unconstrained)": make_system("CAML", random_state=0),
        "CAML (inference<=5ns/inst)": make_system(
            "CAML", random_state=0,
            constraints=CamlConstraints(inference_time_per_instance=5e-9),
        ),
        "AutoGluon (accuracy-first)": make_system("AutoGluon",
                                                  random_state=0),
        "AutoGluon (refit preset)": make_system(
            "AutoGluon", random_state=0, optimize_for_inference=True,
        ),
    }

    rows = []
    winner = None
    for name, system in candidates.items():
        try:
            acc, profile = evaluate(name, system, ds)
        except Exception as exc:
            print(f"  {name}: no pipeline satisfied the setup ({exc})")
            continue
        if name == "CAML (unconstrained)":
            winner = system
        yearly_kwh = profile.total_kwh(PREDICTIONS_PER_DAY * 365)
        rows.append([
            name, acc, profile.inference_kwh_per_instance,
            yearly_kwh, co2_kg(yearly_kwh), cost_eur(yearly_kwh),
        ])

    rows.sort(key=lambda r: r[3])
    print(format_table(
        ["configuration", "bal.acc", "kWh/prediction",
         "kWh/year @10M/day", "kg CO2/year", "EUR/year"],
        rows,
    ))

    # the static table above assumes every prediction runs the full model;
    # deployment through repro.serving measures what the fleet really burns
    # (batching overheads included) and lets a joule SLO route the bulk of
    # traffic to a distilled variant without retraining anything.
    print("\nServing the CAML winner through repro.serving "
          f"({LOADTEST_REQUESTS} seeded requests):\n")
    relaxed, tight, target = serve_through_the_stack(winner, ds)
    print(format_table(
        ["serving policy", "J/prediction", "SLO miss", "variant mix",
         "kWh/year @10M/day", "kg CO2/year", "EUR/year"],
        [yearly_row("no energy SLO", relaxed),
         yearly_row(f"SLO {target:.1e} J/pred", tight)],
    ))
    print(
        "\nTakeaway (paper O1/O3): ensembling buys a little accuracy for an "
        "order of magnitude more inference energy; inference constraints "
        "claw most of it back, and an energy SLO at the serving tier holds "
        "the yearly bill to the distilled variant's budget."
    )


if __name__ == "__main__":
    main()

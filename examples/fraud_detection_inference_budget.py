"""Scenario: fraud detection on millions of bank transactions (paper Sec 1).

'Running a fraud detection model on millions of bank transactions might
require a focus on inference energy consumption.'  This example plays that
scenario end-to-end:

1. pick the guideline's recommendation for an inference-heavy task,
2. train CAML with progressively tighter inference-time constraints,
3. compare against AutoGluon (accuracy-first) and its refit preset,
4. project the yearly energy / CO2 / cost of serving 10M predictions a day.
"""

from repro import (
    CamlConstraints,
    Priority,
    TaskRequirements,
    balanced_accuracy_score,
    load_dataset,
    make_system,
    recommend,
)
from repro.analysis import SystemEnergyProfile, format_table
from repro.energy import co2_kg, cost_eur

PREDICTIONS_PER_DAY = 10_000_000
BUDGET_S = 60.0


def evaluate(name, system, ds):
    system.fit(ds.X_train, ds.y_train, budget_s=BUDGET_S,
               categorical_mask=ds.categorical_mask)
    acc = balanced_accuracy_score(ds.y_test, system.predict(ds.X_test))
    profile = SystemEnergyProfile(
        system=name,
        execution_kwh=system.fit_result_.execution_kwh,
        inference_kwh_per_instance=system.inference_kwh_per_instance(),
    )
    return acc, profile


def main() -> None:
    # 'bank-marketing' stands in for the transaction stream (45k paper rows)
    ds = load_dataset("bank-marketing")

    rec = recommend(TaskRequirements(
        search_budget_s=BUDGET_S, n_classes=ds.n_classes,
        priority=Priority.FAST_INFERENCE,
    ))
    print(f"guideline recommendation: {rec.system} — {rec.reason}\n")

    candidates = {
        "FLAML (guideline pick)": make_system("FLAML", random_state=0),
        "CAML (unconstrained)": make_system("CAML", random_state=0),
        "CAML (inference<=5ns/inst)": make_system(
            "CAML", random_state=0,
            constraints=CamlConstraints(inference_time_per_instance=5e-9),
        ),
        "AutoGluon (accuracy-first)": make_system("AutoGluon",
                                                  random_state=0),
        "AutoGluon (refit preset)": make_system(
            "AutoGluon", random_state=0, optimize_for_inference=True,
        ),
    }

    rows = []
    for name, system in candidates.items():
        try:
            acc, profile = evaluate(name, system, ds)
        except Exception as exc:
            print(f"  {name}: no pipeline satisfied the setup ({exc})")
            continue
        yearly_kwh = profile.total_kwh(PREDICTIONS_PER_DAY * 365)
        rows.append([
            name, acc, profile.inference_kwh_per_instance,
            yearly_kwh, co2_kg(yearly_kwh), cost_eur(yearly_kwh),
        ])

    rows.sort(key=lambda r: r[3])
    print(format_table(
        ["configuration", "bal.acc", "kWh/prediction",
         "kWh/year @10M/day", "kg CO2/year", "EUR/year"],
        rows,
    ))
    print(
        "\nTakeaway (paper O1/O3): ensembling buys a little accuracy for an "
        "order of magnitude more inference energy; inference constraints "
        "claw most of it back."
    )


if __name__ == "__main__":
    main()
